//! A minimal deterministic JSON writer.
//!
//! The benchmark harness serializes metrics and span summaries to
//! `results/*.json`; byte-identical output across same-seed runs is a
//! hard requirement, so this writer has no map reordering, no
//! locale-dependent number formatting and no timestamps — fields appear
//! exactly in the order the caller emits them.

/// Escapes `s` for inclusion in a JSON string literal (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` deterministically; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest round-trip formatting is deterministic across
        // runs and platforms for the same bit pattern.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// Builds one JSON object with caller-ordered fields.
#[derive(Debug, Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    /// Creates an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a float field.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push(format!("\"{}\":{}", escape(key), fmt_f64(value)));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, literal).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders a JSON array from pre-rendered element strings.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(","))
}

/// Pretty-prints compact JSON produced by this module with two-space
/// indentation, so `results/*.json` stays diffable. Assumes valid JSON
/// input (as produced by [`Obj`] / [`array`]).
pub fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                indent += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}

/// A parsed JSON value (see [`parse`]).
///
/// Object fields keep their source order, matching the writer's
/// caller-ordered field convention.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object fields in source order, if it is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a JSON document (the subset this module writes: objects,
/// arrays, strings, numbers, booleans, null; `\uXXXX` escapes including
/// surrogate pairs).
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
///
/// # Examples
///
/// ```
/// use hyperprov_sim::json::{parse, Value};
///
/// let v = parse("{\"a\":[1,2.5],\"b\":null}").unwrap();
/// assert_eq!(v.get("a").unwrap().idx(1).unwrap().as_f64(), Some(2.5));
/// assert_eq!(v.get("b"), Some(&Value::Null));
/// ```
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("bad unicode escape at byte {}", self.pos)
                            })?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf8".to_owned())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated unicode escape".to_owned());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad unicode escape".to_owned())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad unicode escape".to_owned())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn floats_format_deterministically() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(0.1 + 0.2), "0.30000000000000004");
    }

    #[test]
    fn objects_preserve_field_order() {
        let o = Obj::new().str("b", "x").u64("a", 7).build();
        assert_eq!(o, "{\"b\":\"x\",\"a\":7}");
    }

    #[test]
    fn arrays_join_elements() {
        assert_eq!(array(["1".to_owned(), "2".to_owned()]), "[1,2]");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let compact = Obj::new()
            .str("s", "a\"b\\c\nd")
            .u64("n", 42)
            .f64("f", 0.1 + 0.2)
            .raw("arr", &array(["1".into(), "null".into(), "true".into()]))
            .raw("o", &Obj::new().str("k", "v").build())
            .build();
        let v = parse(&compact).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.30000000000000004));
        assert_eq!(v.get("arr").unwrap().idx(1), Some(&Value::Null));
        assert_eq!(v.get("arr").unwrap().idx(2), Some(&Value::Bool(true)));
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_str(), Some("v"));
        // Field order is preserved.
        let keys: Vec<&str> = v
            .entries()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["s", "n", "f", "arr", "o"]);
    }

    #[test]
    fn parse_handles_whitespace_and_pretty_output() {
        let compact = Obj::new()
            .raw("a", &array(["1".into(), "2".into()]))
            .str("s", "x")
            .build();
        assert_eq!(parse(&pretty(&compact)).unwrap(), parse(&compact).unwrap());
    }

    #[test]
    fn parse_numbers_and_unicode() {
        let v = parse("[-1.5e3,0,18446744073709551615,\"\\u00e9\\ud83d\\ude00\"]").unwrap();
        assert_eq!(v.idx(0).unwrap().as_f64(), Some(-1500.0));
        assert_eq!(v.idx(0).unwrap().as_u64(), None);
        assert_eq!(v.idx(1).unwrap().as_u64(), Some(0));
        assert_eq!(v.idx(3).unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn pretty_round_trips_structure() {
        let compact = Obj::new()
            .raw("a", &array(["1".into(), "2".into()]))
            .str("s", "x,y:{}")
            .build();
        let pretty = pretty(&compact);
        assert!(pretty.contains("\"a\": [\n"));
        // Punctuation inside strings is untouched.
        assert!(pretty.contains("\"x,y:{}\""));
        let reparse: String = pretty.split_whitespace().collect::<String>();
        assert!(reparse.contains("\"a\":[1,2]"));
    }
}
