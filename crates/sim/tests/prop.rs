//! Property-based tests of the simulation kernel: histogram accuracy,
//! CPU busy accounting and network serialisation invariants.

use hyperprov_sim::{
    CpuResource, Delivery, DetRng, Histogram, LinkSpec, Network, SimDuration, SimTime,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_quantiles_bounded_by_extremes(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let est = h.quantile(q);
        prop_assert!(est >= min && est <= max, "q={q} est={est} range=[{min},{max}]");
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
    }

    #[test]
    fn histogram_median_close_to_exact(
        samples in proptest::collection::vec(1u64..1_000_000, 10..300),
    ) {
        let mut h = Histogram::new();
        let mut sorted = samples.clone();
        for &s in &samples {
            h.record(s);
        }
        sorted.sort_unstable();
        let exact = sorted[(sorted.len() - 1) / 2] as f64;
        let est = h.quantile(0.5) as f64;
        // Log-linear buckets guarantee < 1/32 relative error per sample;
        // allow a generous 10% band on the median estimate.
        prop_assert!((est - exact).abs() <= exact * 0.1 + 1.0, "est={est} exact={exact}");
    }

    #[test]
    fn histogram_merge_equals_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &x in &a { ha.record(x); hu.record(x); }
        for &x in &b { hb.record(x); hu.record(x); }
        ha.merge(&hb);
        prop_assert_eq!(ha, hu);
    }

    #[test]
    fn cpu_busy_partitions_sum_to_total(
        jobs in proptest::collection::vec((0u64..1000, 1u64..500), 1..40),
    ) {
        let mut cpu = CpuResource::new(1.0);
        let mut submissions: Vec<(u64, u64)> = jobs;
        submissions.sort_unstable();
        let mut last_end = SimTime::ZERO;
        for &(at, cost) in &submissions {
            let (_, end) = cpu.execute(SimTime::from_nanos(at), SimDuration::from_nanos(cost));
            prop_assert!(end >= last_end, "FIFO completion order");
            last_end = end;
        }
        let total: u64 = submissions.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(cpu.total_busy(), SimDuration::from_nanos(total));
        // Partition [0, horizon) into chunks; busy time is additive.
        let horizon = last_end + SimDuration::from_nanos(100);
        let mid = SimTime::from_nanos(horizon.as_nanos() / 2);
        let part = cpu.busy_between(SimTime::ZERO, mid) + cpu.busy_between(mid, horizon);
        prop_assert_eq!(part, cpu.busy_between(SimTime::ZERO, horizon));
        prop_assert_eq!(cpu.busy_between(SimTime::ZERO, horizon), SimDuration::from_nanos(total));
    }

    #[test]
    fn network_deliveries_fifo_per_link(
        sizes in proptest::collection::vec(1u64..100_000, 1..30),
    ) {
        let mut net = Network::new(LinkSpec {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 10_000_000,
            jitter_frac: 0.0,
        });
        let mut rng = DetRng::new(1);
        let a = hyperprov_sim::ActorId(0);
        let b = hyperprov_sim::ActorId(1);
        let mut last = SimTime::ZERO;
        for &size in &sizes {
            match net.offer(SimTime::ZERO, a, b, size, &mut rng) {
                Delivery::At(t) => {
                    prop_assert!(t >= last, "per-link FIFO violated");
                    last = t;
                }
                Delivery::Dropped => prop_assert!(false, "no loss configured"),
            }
        }
        prop_assert_eq!(net.delivered(), sizes.len() as u64);
        prop_assert_eq!(net.bytes_sent(), sizes.iter().sum::<u64>());
    }

    #[test]
    fn rng_forks_are_stable(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::RngCore;
        let root = DetRng::new(seed);
        let mut f1 = root.fork(&label);
        let mut f2 = root.fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn duration_arithmetic_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        let t = SimTime::ZERO + da;
        prop_assert_eq!((t + db) - t, db);
        prop_assert_eq!(da.saturating_add(db), da + db);
    }
}
