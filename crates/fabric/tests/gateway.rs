//! Gateway edge cases: endorsement mismatch across peers, endorsement
//! policies needing multiple orgs, and commit-time policy failures.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use hyperprov_fabric::{
    BatchConfig, Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub, ChannelPolicies,
    Committer, CostModel, EndorsementPolicy, FabricMsg, Gateway, GatewayEvent, MspBuilder, MspId,
    PeerActor, SoloOrdererActor,
};
use hyperprov_ledger::ValidationCode;
use hyperprov_sim::{
    Actor, ActorId, Context, Event, ServiceHarness, SimDuration, SimTime, Simulation,
};

/// A chaincode whose output depends on a per-instance tag — installing
/// different tags on different peers yields mismatching endorsements,
/// which an honest gateway must refuse to submit.
struct TaggedCc(u8);
impl Chaincode for TaggedCc {
    fn name(&self) -> &str {
        "tagged"
    }
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        stub.put_state("k", vec![self.0]);
        Ok(vec![self.0])
    }
}

/// A well-behaved put chaincode.
struct PutCc;
impl Chaincode for PutCc {
    fn name(&self) -> &str {
        "put"
    }
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        let key = stub.arg_str(0)?.to_owned();
        stub.put_state(&key, b"v".to_vec());
        Ok(Vec::new())
    }
}

#[derive(Default)]
struct Log {
    events: Vec<GatewayEvent>,
}

struct OneShot {
    gateway: Gateway,
    harness: ServiceHarness<FabricMsg>,
    chaincode: &'static str,
    log: Rc<RefCell<Log>>,
}

impl Actor<FabricMsg> for OneShot {
    fn on_event(&mut self, ctx: &mut Context<'_, FabricMsg>, event: Event<FabricMsg>) {
        match event {
            Event::Timer { token: 0 } => {
                self.gateway.invoke(
                    ctx,
                    &mut self.harness,
                    self.chaincode,
                    "go",
                    vec![b"key".to_vec()],
                );
            }
            Event::Timer { token } => {
                let _ = self.harness.on_timer(ctx, token);
            }
            Event::Message { msg, .. } => {
                let events = self.gateway.handle(ctx, msg);
                self.log.borrow_mut().events.extend(events);
            }
        }
    }
}

struct Net {
    sim: Simulation<FabricMsg>,
    log: Rc<RefCell<Log>>,
}

/// Builds 2 peers (org1, org2) with per-peer registries, a solo orderer,
/// and a one-shot client needing `needed` endorsements under `policy`.
fn build(
    registries: Vec<ChaincodeRegistry>,
    policy: EndorsementPolicy,
    needed: usize,
    chaincode: &'static str,
) -> Net {
    let costs = CostModel::default();
    let mut msp_builder = MspBuilder::new(2);
    let ids: Vec<_> = (0..registries.len())
        .map(|i| msp_builder.enroll(&format!("peer{i}"), &MspId::new(format!("org{}", i + 1))))
        .collect();
    let client_identity = msp_builder.enroll("client", &MspId::new("org1"));
    let msp = msp_builder.build();

    let mut sim = Simulation::new(8);
    let n = registries.len() as u32;
    let client_actor = ActorId(n + 1);
    let mut peers = Vec::new();
    for (i, (identity, registry)) in ids.iter().zip(registries).enumerate() {
        let committer = Rc::new(RefCell::new(Committer::for_channel(
            "ch".into(),
            msp.clone(),
            ChannelPolicies::new(policy.clone()),
        )));
        let mut peer = PeerActor::<FabricMsg>::new(
            identity.clone(),
            registry,
            committer,
            costs,
            format!("p{i}"),
        );
        if i == 0 {
            peer.subscribe(client_actor);
        }
        peers.push(sim.add_actor(Box::new(peer)));
    }
    let orderer = sim.add_actor(Box::new(SoloOrdererActor::<FabricMsg>::for_channel(
        "ch".into(),
        BatchConfig {
            max_message_count: 1,
            ..BatchConfig::default()
        },
        peers.clone(),
        costs,
    )));
    let log = Rc::new(RefCell::new(Log::default()));
    let gateway = Gateway::new(client_identity, "ch", peers, orderer, needed, costs);
    let got = sim.add_actor(Box::new(OneShot {
        gateway,
        harness: ServiceHarness::new("client"),
        chaincode,
        log: log.clone(),
    }));
    assert_eq!(got, client_actor);
    sim.start_timer(client_actor, SimDuration::ZERO, 0);
    Net { sim, log }
}

fn registry_with(cc: Arc<dyn Chaincode>) -> ChaincodeRegistry {
    let mut registry = ChaincodeRegistry::new();
    registry.install(cc);
    registry
}

#[test]
fn mismatching_endorsements_fail_before_ordering() {
    // Peers run divergent chaincode versions: tags 1 and 2.
    let net = build(
        vec![
            registry_with(Arc::new(TaggedCc(1))),
            registry_with(Arc::new(TaggedCc(2))),
        ],
        EndorsementPolicy::all_of([MspId::new("org1"), MspId::new("org2")]),
        2,
        "tagged",
    );
    let mut net = net;
    net.sim.run_until(SimTime::from_secs(30));
    let log = net.log.borrow();
    assert_eq!(log.events.len(), 1);
    match &log.events[0] {
        GatewayEvent::TxFailed { error, .. } => {
            let reason = error.to_string();
            assert!(reason.contains("mismatch"), "{reason}");
        }
        other => panic!("expected mismatch failure, got {other:?}"),
    }
    // Nothing was ordered.
    assert_eq!(net.sim.metrics().counter("orderer.broadcasts"), 0);
}

#[test]
fn two_org_policy_commits_with_two_endorsements() {
    let mut net = build(
        vec![
            registry_with(Arc::new(PutCc)),
            registry_with(Arc::new(PutCc)),
        ],
        EndorsementPolicy::all_of([MspId::new("org1"), MspId::new("org2")]),
        2,
        "put",
    );
    net.sim.run_until(SimTime::from_secs(30));
    let log = net.log.borrow();
    assert_eq!(log.events.len(), 1);
    match &log.events[0] {
        GatewayEvent::TxCommitted { code, .. } => assert_eq!(*code, ValidationCode::Valid),
        other => panic!("expected commit, got {other:?}"),
    }
}

#[test]
fn under_collected_endorsements_invalidated_at_commit() {
    // Client collects only org1's endorsement but the channel policy
    // demands both orgs: VSCC rejects at commit time.
    let mut net = build(
        vec![
            registry_with(Arc::new(PutCc)),
            registry_with(Arc::new(PutCc)),
        ],
        EndorsementPolicy::all_of([MspId::new("org1"), MspId::new("org2")]),
        1, // under-collect on purpose
        "put",
    );
    net.sim.run_until(SimTime::from_secs(30));
    let log = net.log.borrow();
    assert_eq!(log.events.len(), 1);
    match &log.events[0] {
        GatewayEvent::TxCommitted { code, .. } => {
            assert_eq!(*code, ValidationCode::EndorsementPolicyFailure);
        }
        other => panic!("expected policy failure, got {other:?}"),
    }
    // Non-default channels namespace their peer metrics.
    assert_eq!(net.sim.metrics().counter("p0.ch.tx.invalid"), 1);
}
