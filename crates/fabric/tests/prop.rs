//! Property-based tests of the Fabric substrate: endorsement-policy
//! algebra, block-cutter conservation and message codec round-trips.

use hyperprov_fabric::{
    BatchConfig, BlockAssembler, BlockCutter, Certificate, EndorsementPolicy, Envelope, MspBuilder,
    MspId, Proposal, ProposalResponse, Signature,
};
use hyperprov_ledger::{Decode, Digest, Encode, RawEnvelope, RwSet, TxId};
use hyperprov_sim::SimDuration;
use proptest::prelude::*;

fn org(i: u8) -> MspId {
    MspId::new(format!("org{i}"))
}

fn cert() -> Certificate {
    let mut b = MspBuilder::new(1);
    b.enroll("x", &org(1)).certificate().clone()
}

proptest! {
    #[test]
    fn majority_policy_matches_count(
        n_orgs in 1u8..8,
        endorser_mask in any::<u8>(),
    ) {
        let orgs: Vec<MspId> = (0..n_orgs).map(org).collect();
        let policy = EndorsementPolicy::majority_of(orgs.clone());
        let endorsers: Vec<MspId> = orgs
            .iter()
            .enumerate()
            .filter(|(i, _)| endorser_mask & (1 << i) != 0)
            .map(|(_, o)| o.clone())
            .collect();
        let expected = endorsers.len() > orgs.len() / 2;
        prop_assert_eq!(policy.is_satisfied_by(endorsers.iter()), expected);
    }

    #[test]
    fn adding_endorsers_never_breaks_satisfaction(
        n_orgs in 1u8..6,
        threshold in 1usize..6,
        mask in any::<u8>(),
        extra in 0u8..6,
    ) {
        let orgs: Vec<MspId> = (0..n_orgs).map(org).collect();
        let threshold = threshold.min(orgs.len());
        let policy = EndorsementPolicy::out_of(
            threshold,
            orgs.iter().cloned().map(EndorsementPolicy::signed_by).collect(),
        );
        let mut endorsers: Vec<MspId> = orgs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, o)| o.clone())
            .collect();
        let before = policy.is_satisfied_by(endorsers.iter());
        endorsers.push(org(extra % n_orgs));
        let after = policy.is_satisfied_by(endorsers.iter());
        // Monotonicity: extra endorsements can only help.
        prop_assert!(!before || after);
    }

    #[test]
    fn cutter_conserves_and_bounds_envelopes(
        sizes in proptest::collection::vec(1usize..2000, 1..60),
        max_count in 1usize..12,
        preferred in 500u64..4000,
    ) {
        let mut cutter = BlockCutter::new(BatchConfig {
            max_message_count: max_count,
            preferred_max_bytes: preferred,
            timeout: SimDuration::from_secs(1),
        });
        let mut batched = 0usize;
        let mut seen_batches = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let env = RawEnvelope {
                tx_id: TxId(Digest::of(&(i as u64).to_le_bytes())),
                bytes: vec![0u8; size],
            };
            let out = cutter.offer(env);
            for batch in out.batches {
                batched += batch.len();
                seen_batches.push(batch);
            }
        }
        if let Some(rest) = cutter.cut() {
            batched += rest.len();
            seen_batches.push(rest);
        }
        // Conservation: every envelope ends up in exactly one batch.
        prop_assert_eq!(batched, sizes.len());
        for batch in &seen_batches {
            prop_assert!(!batch.is_empty());
            prop_assert!(batch.len() <= max_count);
            // Byte bound holds unless the batch is a single oversized
            // message.
            let bytes: u64 = batch.iter().map(|e| e.bytes.len() as u64).sum();
            prop_assert!(bytes <= preferred || batch.len() == 1);
        }
        // Order preserved across batches.
        let flat: Vec<u64> = seen_batches
            .iter()
            .flatten()
            .map(|e| e.bytes.len() as u64)
            .collect();
        let expected: Vec<u64> = sizes.iter().map(|&s| s as u64).collect();
        prop_assert_eq!(flat, expected);
    }

    #[test]
    fn assembled_chains_always_verify(
        batch_sizes in proptest::collection::vec(0usize..6, 1..12),
    ) {
        let mut assembler = BlockAssembler::new();
        let mut store = hyperprov_ledger::BlockStore::new();
        let mut n = 0u64;
        for &count in &batch_sizes {
            let batch: Vec<RawEnvelope> = (0..count)
                .map(|_| {
                    n += 1;
                    RawEnvelope {
                        tx_id: TxId(Digest::of(&n.to_le_bytes())),
                        bytes: n.to_le_bytes().to_vec(),
                    }
                })
                .collect();
            let block = assembler.assemble(batch);
            store.append(block).unwrap();
        }
        prop_assert!(store.verify_chain().is_ok());
    }

    #[test]
    fn proposal_codec_round_trips(
        channel in "[a-z]{1,10}",
        chaincode in "[a-z]{1,10}",
        function in "[a-z_]{1,12}",
        args in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..5),
        nonce in any::<u64>(),
    ) {
        let p = Proposal {
            channel: channel.into(),
            chaincode,
            function,
            args,
            creator: cert(),
            nonce,
        };
        let back = Proposal::from_bytes(&p.to_bytes()).unwrap();
        prop_assert_eq!(back.tx_id(), p.tx_id());
        prop_assert_eq!(back, p);
    }

    #[test]
    fn envelope_codec_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let env = Envelope {
            proposal: Proposal {
                channel: "ch".into(),
                chaincode: "cc".into(),
                function: "f".into(),
                args: vec![payload.clone()],
                creator: cert(),
                nonce: 5,
            },
            payload,
            rwset: RwSet::new(),
            event: None,
            endorsements: vec![],
        };
        let raw = env.to_raw();
        prop_assert_eq!(Envelope::from_raw(&raw).unwrap(), env);
    }

    #[test]
    fn response_codec_round_trips(ok in any::<bool>(), body in proptest::collection::vec(any::<u8>(), 0..64)) {
        let resp = ProposalResponse {
            tx_id: TxId(Digest::of(b"t")),
            endorser: cert(),
            result: if ok {
                Ok(body.clone())
            } else {
                Err(String::from_utf8_lossy(&body).into_owned())
            },
            rwset: RwSet::new(),
            event: None,
            signature: Signature(Digest::of(b"s")),
        };
        prop_assert_eq!(ProposalResponse::from_bytes(&resp.to_bytes()).unwrap(), resp);
    }

    #[test]
    fn signatures_verify_only_for_signer_and_message(
        msg1 in proptest::collection::vec(any::<u8>(), 1..64),
        msg2 in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut b = MspBuilder::new(9);
        let alice = b.enroll("alice", &org(1));
        let bob = b.enroll("bob", &org(2));
        let msp = b.build();
        let sig = alice.sign(&msg1);
        prop_assert!(msp.verify(alice.certificate(), &msg1, &sig));
        if msg1 != msg2 {
            prop_assert!(!msp.verify(alice.certificate(), &msg2, &sig));
        }
        prop_assert!(!msp.verify(bob.certificate(), &msg1, &sig));
    }
}
