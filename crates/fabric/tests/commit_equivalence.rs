//! Equivalence property: the split commit path (parallel VSCC verdicts +
//! serial MVCC/apply) must make byte-identical decisions to the legacy
//! serial committer on seeded contention workloads — same per-block
//! `ValidationCode` sequences, same MVCC-conflict sets, same world-state
//! hash, same chain tip — with and without the signature-verification
//! cache.

use std::sync::Arc;

use hyperprov_fabric::{
    endorsement_message, ChannelPolicies, Committer, Endorsement, EndorsementPolicy, Envelope, Msp,
    MspBuilder, MspId, Proposal, SigVerifyCache, Signature, SigningIdentity,
};
use hyperprov_ledger::{
    Block, Digest, KvRead, KvWrite, RwSet, StateKey, TxId, ValidationCode, Version,
};
use proptest::prelude::*;

/// Deterministic xorshift64* generator so each seed reproduces one
/// workload exactly.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Net {
    msp: Arc<Msp>,
    client: SigningIdentity,
    peers: Vec<SigningIdentity>,
}

fn net() -> Net {
    let mut b = MspBuilder::new(1);
    let client = b.enroll("client", &MspId::new("org1"));
    let peers = (0..3)
        .map(|i| b.enroll(&format!("peer{i}"), &MspId::new(format!("org{}", i + 1))))
        .collect();
    Net {
        msp: b.build(),
        client,
        peers,
    }
}

fn envelope(net: &Net, nonce: u64, rwset: RwSet, endorsers: &[usize]) -> Envelope {
    let proposal = Proposal {
        channel: "ch".into(),
        chaincode: "cc".into(),
        function: "f".into(),
        args: vec![],
        creator: net.client.certificate().clone(),
        nonce,
    };
    let tx_id = proposal.tx_id();
    let msg = endorsement_message(&tx_id, b"r", &rwset);
    let endorsements = endorsers
        .iter()
        .map(|&i| Endorsement {
            endorser: net.peers[i].certificate().clone(),
            signature: net.peers[i].sign(&msg),
        })
        .collect();
    Envelope {
        proposal,
        payload: b"r".to_vec(),
        rwset,
        event: None,
        endorsements,
    }
}

/// One seeded contention workload: a few hot keys, random read versions
/// (stale and fresh), endorser subsets that sometimes fail the all-of
/// policy, occasional forged signatures and duplicate transactions.
fn workload(net: &Net, seed: u64) -> Vec<Vec<Envelope>> {
    let mut rng = XorShift::new(seed);
    let mut nonce = 0u64;
    let mut history: Vec<Envelope> = Vec::new();
    let n_blocks = 3 + rng.below(3); // 3..=5
    let mut blocks = Vec::new();
    for _ in 0..n_blocks {
        let n_txs = 3 + rng.below(4); // 3..=6
        let mut envs = Vec::new();
        for _ in 0..n_txs {
            let roll = rng.below(100);
            if roll < 15 && !history.is_empty() {
                // Duplicate of an earlier transaction (same tx id).
                let idx = rng.below(history.len() as u64) as usize;
                envs.push(history[idx].clone());
                continue;
            }
            nonce += 1;
            let hot = format!("k{}", rng.below(3));
            let version = match rng.below(4) {
                0 => None,
                _ => Some(Version::new(rng.below(4), rng.below(5) as u32)),
            };
            let rwset = if rng.below(100) < 70 {
                // Contention: read a hot key at a possibly-stale version
                // and write it back.
                RwSet {
                    reads: vec![KvRead {
                        key: StateKey::new("cc", &hot),
                        version,
                    }],
                    writes: vec![KvWrite {
                        key: StateKey::new("cc", &hot),
                        value: Some(nonce.to_le_bytes().to_vec()),
                    }],
                }
            } else {
                // Blind write to a fresh key: valid whenever the
                // signatures and policy hold.
                RwSet {
                    reads: vec![],
                    writes: vec![KvWrite {
                        key: StateKey::new("cc", format!("fresh-{nonce}")),
                        value: Some(nonce.to_le_bytes().to_vec()),
                    }],
                }
            };
            // [0] and [1] fail the all-of(org1, org2) policy; the rest
            // satisfy it.
            let endorsers: &[usize] = match rng.below(4) {
                0 => &[0],
                1 => &[1],
                2 => &[0, 1],
                _ => &[0, 1, 2],
            };
            let mut env = envelope(net, nonce, rwset, endorsers);
            if rng.below(100) < 10 {
                let slot = rng.below(env.endorsements.len() as u64) as usize;
                env.endorsements[slot].signature = Signature(Digest::of(&nonce.to_le_bytes()));
            }
            history.push(env.clone());
            envs.push(env);
        }
        blocks.push(envs);
    }
    blocks
}

fn fresh_committer(net: &Net) -> Committer {
    let policy = EndorsementPolicy::all_of([MspId::new("org1"), MspId::new("org2")]);
    Committer::new(net.msp.clone(), ChannelPolicies::new(policy))
}

/// Commits `blocks` through the legacy serial path and through the split
/// path (without and with a persistent [`SigVerifyCache`]), asserting the
/// three committers agree on every observable outcome.
fn assert_equivalent(seed: u64) {
    let net = net();
    let blocks = workload(&net, seed);
    let mut legacy = fresh_committer(&net);
    let mut split = fresh_committer(&net);
    let mut cached = fresh_committer(&net);
    let mut cache = SigVerifyCache::new();

    let mut conflicts_legacy: Vec<TxId> = Vec::new();
    let mut conflicts_split: Vec<TxId> = Vec::new();
    let mut conflicts_cached: Vec<TxId> = Vec::new();

    for envs in &blocks {
        let build = |c: &Committer| {
            Block::build(
                c.height(),
                c.store().tip_hash(),
                envs.iter().map(Envelope::to_raw).collect(),
            )
        };

        let out_legacy = legacy.commit_block(build(&legacy)).unwrap();
        conflicts_legacy.extend(
            out_legacy
                .events
                .iter()
                .filter(|e| e.code == ValidationCode::MvccReadConflict)
                .map(|e| e.tx_id),
        );

        let block = build(&split);
        let verdicts = split.vscc_block(&block, None);
        let out_split = split.commit_block_prevalidated(block, verdicts).unwrap();
        conflicts_split.extend(
            out_split
                .events
                .iter()
                .filter(|e| e.code == ValidationCode::MvccReadConflict)
                .map(|e| e.tx_id),
        );

        let block = build(&cached);
        let verdicts = cached.vscc_block(&block, Some(&mut cache));
        let out_cached = cached.commit_block_prevalidated(block, verdicts).unwrap();
        conflicts_cached.extend(
            out_cached
                .events
                .iter()
                .filter(|e| e.code == ValidationCode::MvccReadConflict)
                .map(|e| e.tx_id),
        );

        let height = legacy.height() - 1;
        let codes = |c: &Committer| c.store().block(height).unwrap().metadata.codes.clone();
        assert_eq!(codes(&legacy), codes(&split), "seed {seed} block {height}");
        assert_eq!(codes(&legacy), codes(&cached), "seed {seed} block {height}");
        assert_eq!(out_legacy.valid, out_split.valid);
        assert_eq!(out_legacy.invalid, out_cached.invalid);
        assert_eq!(out_legacy.bytes_written, out_split.bytes_written);
        assert_eq!(out_legacy.written_keys, out_split.written_keys);
        assert_eq!(out_legacy.written_keys, out_cached.written_keys);
    }

    assert_eq!(conflicts_legacy, conflicts_split, "seed {seed}");
    assert_eq!(conflicts_legacy, conflicts_cached, "seed {seed}");
    assert_eq!(legacy.state().state_hash(), split.state().state_hash());
    assert_eq!(legacy.state().state_hash(), cached.state().state_hash());
    assert_eq!(legacy.store().tip_hash(), split.store().tip_hash());
    assert_eq!(legacy.store().tip_hash(), cached.store().tip_hash());
    // The cache saw repeated (cert, msg, sig) triples across duplicates
    // and re-endorsements without ever changing a decision.
    assert!(cache.hits() + cache.misses() > 0, "seed {seed}");
}

#[test]
fn split_commit_matches_serial_on_seeded_contention() {
    // The ISSUE asks for at least 8 seeds; run 12 fixed ones.
    for seed in 0..12 {
        assert_equivalent(seed);
    }
}

#[test]
fn workloads_exercise_every_validation_code() {
    // Meta-check: across the fixed seeds the generator actually produces
    // the interesting mix (valid, policy failure, bad signature, MVCC
    // conflict, duplicate) — otherwise the equivalence above is vacuous.
    let net = net();
    let mut seen = std::collections::BTreeSet::new();
    for seed in 0..12 {
        let mut c = fresh_committer(&net);
        for envs in &workload(&net, seed) {
            let block = Block::build(
                c.height(),
                c.store().tip_hash(),
                envs.iter().map(Envelope::to_raw).collect(),
            );
            let out = c.commit_block(block).unwrap();
            seen.extend(out.events.iter().map(|e| format!("{:?}", e.code)));
        }
    }
    for code in [
        "Valid",
        "MvccReadConflict",
        "BadSignature",
        "EndorsementPolicyFailure",
        "DuplicateTxId",
    ] {
        assert!(seen.contains(code), "generator never produced {code}");
    }
}

proptest! {
    #[test]
    fn split_commit_matches_serial_on_any_seed(seed in any::<u64>()) {
        assert_equivalent(seed);
    }
}
