//! End-to-end tests of the execute-order-validate pipeline under the
//! discrete-event simulator: clients, endorsing/committing peers and
//! (solo or raft) orderers wired through the simulated network.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use hyperprov_fabric::{
    BatchConfig, Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub, ChannelPolicies,
    Committer, CostModel, EndorsementPolicy, FabricMsg, Gateway, GatewayEvent, MspBuilder, MspId,
    PeerActor, RaftConfig, RaftOrdererActor, SigningIdentity, SoloOrdererActor, RAFT_TICK_TOKEN,
};
use hyperprov_ledger::ValidationCode;
use hyperprov_sim::{
    Actor, ActorId, Context, Event, ServiceHarness, SimDuration, SimTime, Simulation,
};

/// A counter chaincode: `inc <key>` reads, increments, writes.
struct CounterCc;
impl Chaincode for CounterCc {
    fn name(&self) -> &str {
        "counter"
    }
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "inc" => {
                let key = stub.arg_str(0)?.to_owned();
                let current = stub
                    .get_state(&key)
                    .map(|v| u64::from_le_bytes(v.try_into().unwrap_or([0u8; 8])))
                    .unwrap_or(0);
                stub.put_state(&key, (current + 1).to_le_bytes().to_vec());
                Ok(current.to_le_bytes().to_vec())
            }
            "put" => {
                let key = stub.arg_str(0)?.to_owned();
                let value = stub.arg_bytes(1)?.to_vec();
                stub.put_state(&key, value);
                Ok(Vec::new())
            }
            "get" => {
                let key = stub.arg_str(0)?.to_owned();
                stub.get_state(&key).ok_or(ChaincodeError::NotFound(key))
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_owned())),
        }
    }
}

#[derive(Debug, Default)]
struct DriverLog {
    committed: Vec<(ValidationCode, SimDuration)>,
    failed: Vec<String>,
    queries: Vec<Result<Vec<u8>, String>>,
}

/// Closed-loop client: issues `remaining` transactions one at a time.
struct ClientDriver {
    gateway: Gateway,
    harness: ServiceHarness<FabricMsg>,
    remaining: u32,
    key_of: Box<dyn FnMut(u32) -> String>,
    log: Rc<RefCell<DriverLog>>,
}

impl Actor<FabricMsg> for ClientDriver {
    fn on_event(&mut self, ctx: &mut Context<'_, FabricMsg>, event: Event<FabricMsg>) {
        match event {
            Event::Timer { token: 0 } => self.next(ctx),
            Event::Timer { token } => {
                let _ = self.harness.on_timer(ctx, token);
            }
            Event::Message { msg, .. } => {
                for ev in self.gateway.handle(ctx, msg) {
                    match ev {
                        GatewayEvent::TxCommitted { code, latency, .. } => {
                            self.log.borrow_mut().committed.push((code, latency));
                            self.next(ctx);
                        }
                        GatewayEvent::TxFailed { error, .. } => {
                            self.log.borrow_mut().failed.push(error.to_string());
                            self.next(ctx);
                        }
                        GatewayEvent::QueryDone { result, .. } => {
                            self.log
                                .borrow_mut()
                                .queries
                                .push(result.map_err(|e| e.to_string()));
                        }
                    }
                }
            }
        }
    }
}

impl ClientDriver {
    fn next(&mut self, ctx: &mut Context<'_, FabricMsg>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let n = self.remaining;
        let key = (self.key_of)(n);
        self.gateway.invoke(
            ctx,
            &mut self.harness,
            "counter",
            "inc",
            vec![key.into_bytes()],
        );
    }
}

struct TestNet {
    sim: Simulation<FabricMsg>,
    peers: Vec<ActorId>,
    log: Rc<RefCell<DriverLog>>,
}

/// Builds: 4 peers (org1..org4), 1 solo orderer, 1 client, counter
/// chaincode with an any-org policy.
fn build_solo_net(txs: u32, batch: BatchConfig, hot_key: bool) -> TestNet {
    let mut msp_builder = MspBuilder::new(7);
    let orgs: Vec<MspId> = (1..=4).map(|i| MspId::new(format!("org{i}"))).collect();
    let peer_ids: Vec<SigningIdentity> = orgs
        .iter()
        .enumerate()
        .map(|(i, org)| msp_builder.enroll(&format!("peer{i}"), org))
        .collect();
    let client_id = msp_builder.enroll("client0", &orgs[0]);
    let msp = msp_builder.build();

    let mut registry = ChaincodeRegistry::new();
    registry.install(Arc::new(CounterCc));

    let policy = EndorsementPolicy::any_of(orgs.clone());
    let costs = CostModel::default();

    let mut sim = Simulation::new(42);
    let mut peers = Vec::new();
    let mut peer_actors: Vec<PeerActor<FabricMsg>> = peer_ids
        .iter()
        .enumerate()
        .map(|(i, identity)| {
            PeerActor::new(
                identity.clone(),
                registry.clone(),
                Rc::new(RefCell::new(Committer::new(
                    msp.clone(),
                    ChannelPolicies::new(policy.clone()),
                ))),
                costs,
                format!("peer{i}"),
            )
        })
        .collect();

    // Actor ids are assigned in add order: peers 0..4, orderer 4, client 5.
    let client_actor_id = ActorId(5);
    peer_actors[0].subscribe(client_actor_id);

    for actor in peer_actors {
        peers.push(sim.add_actor(Box::new(actor)));
    }
    let orderer = sim.add_actor(Box::new(SoloOrdererActor::<FabricMsg>::new(
        batch,
        peers.clone(),
        costs,
    )));

    let log = Rc::new(RefCell::new(DriverLog::default()));
    let gateway = Gateway::new(
        client_id,
        hyperprov_ledger::ChannelId::default(),
        peers.clone(),
        orderer,
        1,
        costs,
    );
    let driver = ClientDriver {
        gateway,
        harness: ServiceHarness::new("client"),
        remaining: txs,
        key_of: if hot_key {
            Box::new(|_| "hot".to_owned())
        } else {
            Box::new(|n| format!("key{n}"))
        },
        log: log.clone(),
    };
    let client = sim.add_actor(Box::new(driver));
    assert_eq!(client, client_actor_id);
    sim.start_timer(client, SimDuration::ZERO, 0);
    TestNet { sim, peers, log }
}

#[test]
fn closed_loop_transactions_all_commit() {
    let mut net = build_solo_net(20, BatchConfig::default(), false);
    net.sim.run_until(SimTime::from_secs(120));
    let log = net.log.borrow();
    assert_eq!(log.committed.len(), 20, "failed: {:?}", log.failed);
    assert!(log.failed.is_empty());
    for (code, latency) in &log.committed {
        assert_eq!(*code, ValidationCode::Valid);
        // Each closed-loop tx waits for the 2s batch timeout at most.
        assert!(*latency <= SimDuration::from_secs(3), "{latency}");
        assert!(*latency >= SimDuration::from_micros(100), "{latency}");
    }
}

#[test]
fn batch_size_one_cuts_immediately_and_lowers_latency() {
    let fast_batch = BatchConfig {
        max_message_count: 1,
        ..BatchConfig::default()
    };
    let mut net = build_solo_net(10, fast_batch, false);
    net.sim.run_until(SimTime::from_secs(60));
    let log = net.log.borrow();
    assert_eq!(log.committed.len(), 10);
    for (_, latency) in &log.committed {
        // No batch-timeout stall: commits land in ~10s of milliseconds.
        assert!(*latency < SimDuration::from_millis(100), "{latency}");
    }
    assert_eq!(net.sim.metrics().counter("orderer.blocks_cut"), 10);
    assert_eq!(net.sim.metrics().counter("orderer.timeout_cuts"), 0);
}

#[test]
fn closed_loop_hot_key_still_commits_serially() {
    // A closed-loop client on one hot key never conflicts with itself.
    let mut net = build_solo_net(10, BatchConfig::default(), true);
    net.sim.run_until(SimTime::from_secs(120));
    let log = net.log.borrow();
    assert_eq!(log.committed.len(), 10);
    assert!(log
        .committed
        .iter()
        .all(|(code, _)| *code == ValidationCode::Valid));
}

#[test]
fn all_peers_converge_to_same_chain() {
    let mut net = build_solo_net(15, BatchConfig::default(), false);
    net.sim.run_until(SimTime::from_secs(120));
    // Inspect peer metrics: all four peers committed the same number of
    // valid transactions and blocks.
    let m = net.sim.metrics();
    let blocks0 = m.counter("peer0.blocks");
    assert!(blocks0 > 0);
    for i in 1..4 {
        assert_eq!(m.counter(&format!("peer{i}.blocks")), blocks0);
        assert_eq!(
            m.counter(&format!("peer{i}.tx.valid")),
            m.counter("peer0.tx.valid")
        );
    }
    assert_eq!(m.counter("peer0.tx.valid"), 15);
    assert_eq!(m.counter("peer0.tx.invalid"), 0);
    let _ = &net.peers;
}

/// Raft variant: 3 orderers, peers receive blocks from every applying
/// member and deduplicate.
#[test]
fn raft_ordering_service_commits_transactions() {
    let mut msp_builder = MspBuilder::new(9);
    let org = MspId::new("org1");
    let peer_identity = msp_builder.enroll("peer0", &org);
    let client_id = msp_builder.enroll("client0", &org);
    let msp = msp_builder.build();

    let mut registry = ChaincodeRegistry::new();
    registry.install(Arc::new(CounterCc));
    let costs = CostModel::default();
    let policy = EndorsementPolicy::any_of([org.clone()]);

    let mut sim = Simulation::new(11);
    // Layout: peer=0, orderers=1,2,3, client=4.
    let peer_actor_id = ActorId(0);
    let orderer_ids: Vec<ActorId> = (1..=3).map(ActorId).collect();
    let client_actor_id = ActorId(4);

    let mut peer = PeerActor::<FabricMsg>::new(
        peer_identity,
        registry,
        Rc::new(RefCell::new(Committer::new(
            msp.clone(),
            ChannelPolicies::new(policy),
        ))),
        costs,
        "peer0",
    );
    peer.subscribe(client_actor_id);
    let got_peer = sim.add_actor(Box::new(peer));
    assert_eq!(got_peer, peer_actor_id);

    let batch = BatchConfig {
        max_message_count: 1,
        ..BatchConfig::default()
    };
    for i in 0..3 {
        let actor = RaftOrdererActor::<FabricMsg>::new(
            i,
            orderer_ids.clone(),
            vec![peer_actor_id],
            batch,
            RaftConfig::default(),
            SimDuration::from_millis(50),
            77,
            costs,
        );
        let id = sim.add_actor(Box::new(actor));
        assert_eq!(id, orderer_ids[i]);
        sim.start_timer(id, SimDuration::ZERO, RAFT_TICK_TOKEN);
    }

    let log = Rc::new(RefCell::new(DriverLog::default()));
    // Point the gateway at orderer 0; it redirects to the leader if needed.
    let gateway = Gateway::new(
        client_id,
        hyperprov_ledger::ChannelId::default(),
        vec![peer_actor_id],
        orderer_ids[0],
        1,
        costs,
    );
    let driver = ClientDriver {
        gateway,
        harness: ServiceHarness::new("client"),
        remaining: 8,
        key_of: Box::new(|n| format!("key{n}")),
        log: log.clone(),
    };
    let client = sim.add_actor(Box::new(driver));
    assert_eq!(client, client_actor_id);

    // Give raft time to elect before starting the workload.
    sim.start_timer(client, SimDuration::from_secs(5), 0);
    sim.run_until(SimTime::from_secs(300));

    let log = log.borrow();
    assert_eq!(log.committed.len(), 8, "failed: {:?}", log.failed);
    assert!(log
        .committed
        .iter()
        .all(|(code, _)| *code == ValidationCode::Valid));
    // Peer deduplicated multi-orderer deliveries: 8 blocks committed once.
    assert_eq!(sim.metrics().counter("peer0.blocks"), 8);
}

#[test]
fn endorsement_failure_reported_to_client() {
    // Query a missing key: chaincode rejects, gateway surfaces QueryDone Err.
    let mut msp_builder = MspBuilder::new(5);
    let org = MspId::new("org1");
    let peer_identity = msp_builder.enroll("peer0", &org);
    let client_id = msp_builder.enroll("client0", &org);
    let msp = msp_builder.build();
    let mut registry = ChaincodeRegistry::new();
    registry.install(Arc::new(CounterCc));
    let costs = CostModel::default();

    struct QueryOnce {
        gateway: Gateway,
        harness: ServiceHarness<FabricMsg>,
        log: Rc<RefCell<DriverLog>>,
    }
    impl Actor<FabricMsg> for QueryOnce {
        fn on_event(&mut self, ctx: &mut Context<'_, FabricMsg>, event: Event<FabricMsg>) {
            match event {
                Event::Timer { token: 0 } => {
                    self.gateway.query(
                        ctx,
                        &mut self.harness,
                        "counter",
                        "get",
                        vec![b"missing".to_vec()],
                    );
                }
                Event::Timer { token } => {
                    let _ = self.harness.on_timer(ctx, token);
                }
                Event::Message { msg, .. } => {
                    for ev in self.gateway.handle(ctx, msg) {
                        if let GatewayEvent::QueryDone { result, .. } = ev {
                            self.log
                                .borrow_mut()
                                .queries
                                .push(result.map_err(|e| e.to_string()));
                            ctx.stop();
                        }
                    }
                }
            }
        }
    }

    let mut sim = Simulation::new(3);
    let peer = PeerActor::<FabricMsg>::new(
        peer_identity,
        registry,
        Rc::new(RefCell::new(Committer::new(
            msp.clone(),
            ChannelPolicies::new(EndorsementPolicy::any_of([org.clone()])),
        ))),
        costs,
        "peer0",
    );
    let peer_id = sim.add_actor(Box::new(peer));
    let log = Rc::new(RefCell::new(DriverLog::default()));
    let gateway = Gateway::new(
        client_id,
        hyperprov_ledger::ChannelId::default(),
        vec![peer_id],
        peer_id,
        1,
        costs,
    );
    let client = sim.add_actor(Box::new(QueryOnce {
        gateway,
        harness: ServiceHarness::new("client"),
        log: log.clone(),
    }));
    sim.start_timer(client, SimDuration::ZERO, 0);
    sim.run_until(SimTime::from_secs(10));
    let log = log.borrow();
    assert_eq!(log.queries.len(), 1);
    assert!(log.queries[0].as_ref().unwrap_err().contains("not found"));
}
