//! Verification caches for the accelerated commit path.
//!
//! Two FastFabric-style memoisations with hit/miss counters:
//!
//! * [`SigVerifyCache`] — a per-peer memo of endorsement signatures that
//!   already verified, keyed by `(certificate, message digest, signature)`.
//!   Re-delivered, replayed or re-validated envelopes skip the expensive
//!   verification; only *successful* checks are cached, so a forged
//!   signature is re-checked (and re-rejected) every time and the cache
//!   can never turn an invalid endorsement valid.
//! * [`ReadCache`] — an endorser-side hot-state read cache with
//!   MVCC-version invalidation: every key written by a committed
//!   transaction is evicted, so a present entry is provably current. The
//!   cache models the *cost* of avoided state-database lookups only;
//!   chaincode execution still reads the authoritative
//!   [`StateDb`](hyperprov_ledger::StateDb), so endorsement results are
//!   byte-identical with the cache on or off.

use std::collections::HashSet;

use hyperprov_ledger::{Digest, StateKey};

use crate::identity::{CertId, Certificate, Msp, Signature};

/// Memo of already-verified `(certificate, digest, signature)` triples.
#[derive(Debug, Clone, Default)]
pub struct SigVerifyCache {
    verified: HashSet<(CertId, Digest, Signature)>,
    hits: u64,
    misses: u64,
}

impl SigVerifyCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SigVerifyCache::default()
    }

    /// Verifies `sig` by `cert` over `message`, consulting the memo
    /// first. Returns `(ok, was_hit)`.
    pub fn verify(
        &mut self,
        msp: &Msp,
        cert: &Certificate,
        message: &[u8],
        sig: &Signature,
    ) -> (bool, bool) {
        let key = (cert.id, Digest::of(message), *sig);
        if self.verified.contains(&key) {
            self.hits += 1;
            return (true, true);
        }
        self.misses += 1;
        let ok = msp.verify(cert, message, sig);
        if ok {
            self.verified.insert(key);
        }
        (ok, false)
    }

    /// Verifications served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Verifications that ran cryptographically.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of memoised triples.
    pub fn len(&self) -> usize {
        self.verified.len()
    }

    /// True when nothing has been memoised.
    pub fn is_empty(&self) -> bool {
        self.verified.is_empty()
    }
}

/// Endorser-side cache of state keys whose latest committed version the
/// peer has recently read.
#[derive(Debug, Clone, Default)]
pub struct ReadCache {
    keys: HashSet<StateKey>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl ReadCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ReadCache::default()
    }

    /// Records a chaincode read of `key`. Returns `true` when the read
    /// was served from the cache; a miss inserts the key for next time.
    pub fn touch(&mut self, key: &StateKey) -> bool {
        if self.keys.contains(key) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.keys.insert(key.clone());
            false
        }
    }

    /// Evicts `key` after a committed write to it (MVCC-version
    /// invalidation). Returns `true` if an entry was dropped.
    pub fn invalidate(&mut self, key: &StateKey) -> bool {
        let dropped = self.keys.remove(key);
        if dropped {
            self.invalidations += 1;
        }
        dropped
    }

    /// Reads served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Reads that went to the state database.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by committed writes.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no key is cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::{MspBuilder, MspId};

    #[test]
    fn sig_cache_hits_on_repeat_and_counts() {
        let mut b = MspBuilder::new(1);
        let id = b.enroll("peer0", &MspId::new("org1"));
        let msp = b.build();
        let msg = b"endorse-me";
        let sig = id.sign(msg);
        let mut cache = SigVerifyCache::new();
        assert_eq!(
            cache.verify(&msp, id.certificate(), msg, &sig),
            (true, false)
        );
        assert_eq!(
            cache.verify(&msp, id.certificate(), msg, &sig),
            (true, true)
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sig_cache_never_caches_failures() {
        let mut b = MspBuilder::new(1);
        let id = b.enroll("peer0", &MspId::new("org1"));
        let msp = b.build();
        let forged = Signature(Digest::of(b"forged"));
        let mut cache = SigVerifyCache::new();
        assert_eq!(
            cache.verify(&msp, id.certificate(), b"m", &forged),
            (false, false)
        );
        // Re-checked, still a miss: failures are not memoised.
        assert_eq!(
            cache.verify(&msp, id.certificate(), b"m", &forged),
            (false, false)
        );
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn sig_cache_distinguishes_messages_and_signers() {
        let mut b = MspBuilder::new(1);
        let a = b.enroll("a", &MspId::new("org1"));
        let c = b.enroll("c", &MspId::new("org2"));
        let msp = b.build();
        let mut cache = SigVerifyCache::new();
        cache.verify(&msp, a.certificate(), b"m1", &a.sign(b"m1"));
        // Different message: miss. Different signer: miss.
        assert_eq!(
            cache.verify(&msp, a.certificate(), b"m2", &a.sign(b"m2")),
            (true, false)
        );
        assert_eq!(
            cache.verify(&msp, c.certificate(), b"m1", &c.sign(b"m1")),
            (true, false)
        );
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn read_cache_hit_miss_and_invalidation() {
        let k = StateKey::new("cc", "hot");
        let mut cache = ReadCache::new();
        assert!(!cache.touch(&k)); // cold miss, now cached
        assert!(cache.touch(&k)); // hit
        assert!(cache.invalidate(&k)); // committed write evicts
        assert!(!cache.invalidate(&k)); // second eviction is a no-op
        assert!(!cache.touch(&k)); // miss again after invalidation
        assert_eq!(
            (cache.hits(), cache.misses(), cache.invalidations()),
            (1, 2, 1)
        );
    }
}
