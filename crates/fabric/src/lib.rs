//! # hyperprov-fabric
//!
//! A from-scratch, Fabric-like permissioned blockchain implementing the
//! execute-order-validate pipeline HyperProv runs on:
//!
//! * [`Msp`]/[`Certificate`]/[`SigningIdentity`] — membership and
//!   signatures (see DESIGN.md for the crypto substitution),
//! * [`Chaincode`]/[`ChaincodeStub`] — the smart-contract shim with state,
//!   history, range and composite-key queries,
//! * [`endorse`] — proposal simulation and endorsement,
//! * [`BlockCutter`]/[`BatchConfig`] — ordering-service batching,
//! * [`RaftNode`] — a compact Raft for replicated ordering,
//! * [`Committer`] — VSCC endorsement-policy + MVCC validation and commit,
//! * [`PeerActor`]/[`SoloOrdererActor`]/[`RaftOrdererActor`] — simulation
//!   actors that charge device CPU costs, and
//! * [`Gateway`] — the client SDK equivalent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod caches;
mod chaincode;
mod committer;
mod costs;
mod endorser;
mod gateway;
mod identity;
mod messages;
mod nodes;
mod orderer;
mod policy;
mod raft;

pub use caches::{ReadCache, SigVerifyCache};
pub use chaincode::{
    Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub, StubStats, COMPOSITE_SEP,
};
pub use committer::{BootstrapError, ChannelPolicies, CommitOutcome, Committer, VsccVerdict};
pub use costs::CostModel;
pub use endorser::endorse;
pub use gateway::{Gateway, GatewayError, GatewayEvent, GATEWAY_TOKEN_BIT};
pub use identity::{CertId, Certificate, Msp, MspBuilder, MspId, Signature, SigningIdentity};
pub use messages::{
    endorsement_message, payload_checksum, tx_trace, ChaincodeEvent, CommitEvent, Endorsement,
    Envelope, Proposal, ProposalResponse, SignedProposal,
};
pub use nodes::{
    Carries, CommitPipeline, FabricMsg, PeerActor, RaftOrdererActor, SnapshotPolicy,
    SoloOrdererActor, BUSY_REASON, RAFT_TICK_TOKEN,
};
pub use orderer::{BatchConfig, BlockAssembler, BlockCutter, CutterOutput};
pub use policy::EndorsementPolicy;
pub use raft::{LogEntry, PeerIdx, RaftConfig, RaftMsg, RaftNode, RaftOutput, Role};
