//! Endorsement policies: which organisations must endorse a transaction.
//!
//! Mirrors Fabric's signature-policy language (`AND`, `OR`, `OutOf` over
//! MSP principals). The committing peer evaluates the policy against the
//! set of organisations whose endorsements verified.

use std::collections::BTreeSet;
use std::fmt;

use crate::identity::MspId;

/// A boolean combination of organisation principals.
///
/// # Examples
///
/// ```
/// use hyperprov_fabric::{EndorsementPolicy, MspId};
///
/// let org1 = MspId::new("org1");
/// let org2 = MspId::new("org2");
/// let policy = EndorsementPolicy::or(vec![
///     EndorsementPolicy::signed_by(org1.clone()),
///     EndorsementPolicy::signed_by(org2.clone()),
/// ]);
/// assert!(policy.is_satisfied_by([org1].iter()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndorsementPolicy {
    /// Satisfied if the given organisation endorsed.
    SignedBy(MspId),
    /// Satisfied if all sub-policies are satisfied.
    And(Vec<EndorsementPolicy>),
    /// Satisfied if at least one sub-policy is satisfied.
    Or(Vec<EndorsementPolicy>),
    /// Satisfied if at least `n` sub-policies are satisfied.
    OutOf(usize, Vec<EndorsementPolicy>),
}

impl EndorsementPolicy {
    /// `SignedBy` leaf.
    pub fn signed_by(org: MspId) -> Self {
        EndorsementPolicy::SignedBy(org)
    }

    /// Conjunction of sub-policies.
    pub fn and(policies: Vec<EndorsementPolicy>) -> Self {
        EndorsementPolicy::And(policies)
    }

    /// Disjunction of sub-policies.
    pub fn or(policies: Vec<EndorsementPolicy>) -> Self {
        EndorsementPolicy::Or(policies)
    }

    /// Threshold over sub-policies.
    pub fn out_of(n: usize, policies: Vec<EndorsementPolicy>) -> Self {
        EndorsementPolicy::OutOf(n, policies)
    }

    /// Any single one of the given organisations.
    pub fn any_of(orgs: impl IntoIterator<Item = MspId>) -> Self {
        EndorsementPolicy::Or(orgs.into_iter().map(EndorsementPolicy::SignedBy).collect())
    }

    /// All of the given organisations.
    pub fn all_of(orgs: impl IntoIterator<Item = MspId>) -> Self {
        EndorsementPolicy::And(orgs.into_iter().map(EndorsementPolicy::SignedBy).collect())
    }

    /// A strict majority (`floor(n/2) + 1`) of the given organisations.
    pub fn majority_of(orgs: impl IntoIterator<Item = MspId>) -> Self {
        let leaves: Vec<EndorsementPolicy> =
            orgs.into_iter().map(EndorsementPolicy::SignedBy).collect();
        let n = leaves.len() / 2 + 1;
        EndorsementPolicy::OutOf(n, leaves)
    }

    /// Evaluates the policy against the set of endorsing organisations.
    pub fn is_satisfied_by<'a>(&self, endorsers: impl IntoIterator<Item = &'a MspId>) -> bool {
        let set: BTreeSet<&MspId> = endorsers.into_iter().collect();
        self.eval(&set)
    }

    fn eval(&self, set: &BTreeSet<&MspId>) -> bool {
        match self {
            EndorsementPolicy::SignedBy(org) => set.contains(org),
            EndorsementPolicy::And(subs) => subs.iter().all(|p| p.eval(set)),
            EndorsementPolicy::Or(subs) => {
                // An empty Or is unsatisfiable, like Fabric's empty NOutOf.
                subs.iter().any(|p| p.eval(set))
            }
            EndorsementPolicy::OutOf(n, subs) => subs.iter().filter(|p| p.eval(set)).count() >= *n,
        }
    }

    /// The smallest number of distinct organisations that could satisfy
    /// the policy — used by the gateway to decide how many endorsements to
    /// collect before submitting.
    pub fn min_endorsers(&self) -> usize {
        match self {
            EndorsementPolicy::SignedBy(_) => 1,
            EndorsementPolicy::And(subs) => {
                // Upper bound: sum of children (orgs may overlap, but the
                // gateway only uses this as a collection target).
                subs.iter().map(EndorsementPolicy::min_endorsers).sum()
            }
            EndorsementPolicy::Or(subs) => subs
                .iter()
                .map(EndorsementPolicy::min_endorsers)
                .min()
                .unwrap_or(usize::MAX),
            EndorsementPolicy::OutOf(n, subs) => {
                let mut costs: Vec<usize> =
                    subs.iter().map(EndorsementPolicy::min_endorsers).collect();
                costs.sort_unstable();
                costs.iter().take(*n).sum::<usize>().max(*n)
            }
        }
    }

    /// Every organisation mentioned anywhere in the policy.
    pub fn mentioned_orgs(&self) -> Vec<MspId> {
        let mut out = Vec::new();
        self.collect_orgs(&mut out);
        out.dedup();
        out
    }

    fn collect_orgs(&self, out: &mut Vec<MspId>) {
        match self {
            EndorsementPolicy::SignedBy(org) => {
                if !out.contains(org) {
                    out.push(org.clone());
                }
            }
            EndorsementPolicy::And(subs)
            | EndorsementPolicy::Or(subs)
            | EndorsementPolicy::OutOf(_, subs) => {
                for p in subs {
                    p.collect_orgs(out);
                }
            }
        }
    }
}

impl fmt::Display for EndorsementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndorsementPolicy::SignedBy(org) => write!(f, "SignedBy({org})"),
            EndorsementPolicy::And(subs) => {
                write!(f, "And(")?;
                for (i, p) in subs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            EndorsementPolicy::Or(subs) => {
                write!(f, "Or(")?;
                for (i, p) in subs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            EndorsementPolicy::OutOf(n, subs) => {
                write!(f, "OutOf({n}; ")?;
                for (i, p) in subs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org(n: u32) -> MspId {
        MspId::new(format!("org{n}"))
    }

    #[test]
    fn signed_by_leaf() {
        let p = EndorsementPolicy::signed_by(org(1));
        assert!(p.is_satisfied_by([org(1)].iter()));
        assert!(!p.is_satisfied_by([org(2)].iter()));
        assert!(!p.is_satisfied_by([].iter()));
        assert_eq!(p.min_endorsers(), 1);
    }

    #[test]
    fn and_requires_all() {
        let p = EndorsementPolicy::all_of([org(1), org(2)]);
        assert!(p.is_satisfied_by([org(1), org(2)].iter()));
        assert!(!p.is_satisfied_by([org(1)].iter()));
        assert_eq!(p.min_endorsers(), 2);
    }

    #[test]
    fn or_requires_any() {
        let p = EndorsementPolicy::any_of([org(1), org(2)]);
        assert!(p.is_satisfied_by([org(2)].iter()));
        assert!(!p.is_satisfied_by([org(3)].iter()));
        assert_eq!(p.min_endorsers(), 1);
    }

    #[test]
    fn empty_and_is_trivially_true_empty_or_false() {
        let and = EndorsementPolicy::and(vec![]);
        let or = EndorsementPolicy::or(vec![]);
        assert!(and.is_satisfied_by([].iter()));
        assert!(!or.is_satisfied_by([org(1)].iter()));
    }

    #[test]
    fn out_of_threshold() {
        let p = EndorsementPolicy::out_of(
            2,
            vec![
                EndorsementPolicy::signed_by(org(1)),
                EndorsementPolicy::signed_by(org(2)),
                EndorsementPolicy::signed_by(org(3)),
            ],
        );
        assert!(p.is_satisfied_by([org(1), org(3)].iter()));
        assert!(!p.is_satisfied_by([org(2)].iter()));
        assert_eq!(p.min_endorsers(), 2);
    }

    #[test]
    fn majority_of_four_needs_three() {
        let p = EndorsementPolicy::majority_of([org(1), org(2), org(3), org(4)]);
        assert!(p.is_satisfied_by([org(1), org(2), org(3)].iter()));
        assert!(!p.is_satisfied_by([org(1), org(2)].iter()));
        assert_eq!(p.min_endorsers(), 3);
    }

    #[test]
    fn nested_policies() {
        // (org1 AND org2) OR org3
        let p = EndorsementPolicy::or(vec![
            EndorsementPolicy::all_of([org(1), org(2)]),
            EndorsementPolicy::signed_by(org(3)),
        ]);
        assert!(p.is_satisfied_by([org(3)].iter()));
        assert!(p.is_satisfied_by([org(1), org(2)].iter()));
        assert!(!p.is_satisfied_by([org(1)].iter()));
        assert_eq!(p.min_endorsers(), 1);
    }

    #[test]
    fn mentioned_orgs_dedups() {
        let p = EndorsementPolicy::or(vec![
            EndorsementPolicy::all_of([org(1), org(2)]),
            EndorsementPolicy::signed_by(org(1)),
        ]);
        assert_eq!(p.mentioned_orgs(), vec![org(1), org(2)]);
    }

    #[test]
    fn duplicate_endorsers_count_once() {
        let p = EndorsementPolicy::all_of([org(1), org(2)]);
        let endorsers = [org(1), org(1)];
        assert!(!p.is_satisfied_by(endorsers.iter()));
    }

    #[test]
    fn display_renders() {
        let p = EndorsementPolicy::out_of(
            1,
            vec![
                EndorsementPolicy::signed_by(org(1)),
                EndorsementPolicy::and(vec![EndorsementPolicy::signed_by(org(2))]),
            ],
        );
        let s = p.to_string();
        assert!(s.contains("OutOf(1"));
        assert!(s.contains("SignedBy(org1)"));
    }
}
