//! The client gateway: drives the endorse → submit → commit flow.
//!
//! [`Gateway`] is embedded inside an application actor (the HyperProv
//! client, a workload generator, ...). The host actor forwards incoming
//! [`FabricMsg`]s to [`Gateway::handle`] and reacts to the returned
//! [`GatewayEvent`]s. This mirrors the role of the paper's NodeJS client
//! library sitting on top of the Fabric SDK.

use std::collections::HashMap;

use hyperprov_ledger::{ChannelId, Digest, Encode, TxId, ValidationCode};
use hyperprov_sim::{ActorId, Context, ServiceHarness, SimDuration, SimTime, TimerId};

use crate::costs::CostModel;
use crate::identity::SigningIdentity;
use crate::messages::{
    tx_trace, CommitEvent, Endorsement, Envelope, Proposal, ProposalResponse, SignedProposal,
};
use crate::nodes::{Carries, FabricMsg, BUSY_REASON};

/// Why a gateway operation failed before producing a commit or a query
/// result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// An endorsing peer rejected or failed the proposal.
    Endorsement {
        /// The peer's rejection message.
        reason: String,
    },
    /// The endorsing peer shed the request at admission (bounded queue,
    /// `Nack` backpressure policy). The operation may succeed on retry.
    Busy,
    /// Collected endorsements disagree on the result or read/write set.
    Mismatch,
    /// An endorse-only query returned an application error.
    Query {
        /// The chaincode's error message.
        reason: String,
    },
    /// The endorsement (or query) phase exceeded its per-op deadline —
    /// typically a crashed or partitioned endorsing peer.
    EndorseTimeout,
    /// The commit notification did not arrive within the deadline — a
    /// lost broadcast, a dead orderer, or a partitioned commit event.
    CommitTimeout,
}

impl GatewayError {
    /// Classifies an endorser's wire-level rejection string.
    fn from_endorsement(reason: String) -> Self {
        if reason == BUSY_REASON {
            GatewayError::Busy
        } else {
            GatewayError::Endorsement { reason }
        }
    }

    /// Classifies a query's wire-level rejection string.
    fn from_query(reason: String) -> Self {
        if reason == BUSY_REASON {
            GatewayError::Busy
        } else {
            GatewayError::Query { reason }
        }
    }

    /// True when the failure is transient backpressure worth retrying.
    pub fn is_busy(&self) -> bool {
        matches!(self, GatewayError::Busy)
    }

    /// True when the failure is transient — backpressure or a deadline
    /// expiry — and a fresh attempt (with a new tx id) may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            GatewayError::Busy | GatewayError::EndorseTimeout | GatewayError::CommitTimeout
        )
    }
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Endorsement { reason } | GatewayError::Query { reason } => {
                write!(f, "{reason}")
            }
            GatewayError::Busy => write!(f, "{BUSY_REASON}"),
            GatewayError::Mismatch => write!(f, "endorsement mismatch across peers"),
            GatewayError::EndorseTimeout => write!(f, "endorsement deadline exceeded"),
            GatewayError::CommitTimeout => write!(f, "commit deadline exceeded"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// Completion notifications surfaced to the host actor.
#[derive(Debug, Clone)]
pub enum GatewayEvent {
    /// The transaction was committed (validly or not) in a block.
    TxCommitted {
        /// The transaction.
        tx_id: TxId,
        /// Validation outcome.
        code: ValidationCode,
        /// End-to-end latency from `invoke` to commit notification.
        latency: hyperprov_sim::SimDuration,
        /// The chaincode's response payload agreed at endorsement.
        payload: Vec<u8>,
    },
    /// The transaction failed before ordering (endorsement error or
    /// mismatching endorsements).
    TxFailed {
        /// The transaction.
        tx_id: TxId,
        /// Why it failed.
        error: GatewayError,
    },
    /// An endorse-only query finished.
    QueryDone {
        /// The query's proposal id.
        tx_id: TxId,
        /// Chaincode result.
        result: Result<Vec<u8>, GatewayError>,
        /// Latency from `query` to response.
        latency: hyperprov_sim::SimDuration,
    },
}

#[derive(Debug)]
enum Inflight {
    Tx {
        started: SimTime,
        needed: usize,
        proposal: Box<Proposal>,
        responses: Vec<ProposalResponse>,
        submitted: bool,
        deadline: Option<(u64, TimerId)>,
    },
    Query {
        started: SimTime,
        deadline: Option<(u64, TimerId)>,
    },
}

impl Inflight {
    fn take_deadline(&mut self) -> Option<(u64, TimerId)> {
        match self {
            Inflight::Tx { deadline, .. } | Inflight::Query { deadline, .. } => deadline.take(),
        }
    }
}

/// Tag bit identifying timer tokens allocated by a [`Gateway`] for per-op
/// deadlines. Disjoint from both [`hyperprov_sim::HARNESS_TOKEN_BIT`] and
/// actor-internal small-constant tokens.
pub const GATEWAY_TOKEN_BIT: u64 = 1 << 62;

/// A Fabric client endpoint bound to one channel's endorsers and orderer.
/// A client on a multi-channel network embeds one gateway per channel.
#[derive(Debug)]
pub struct Gateway {
    identity: SigningIdentity,
    channel: ChannelId,
    endorsers: Vec<ActorId>,
    orderer: ActorId,
    endorsements_needed: usize,
    costs: CostModel,
    nonce: u64,
    inflight: HashMap<TxId, Inflight>,
    /// Deadline for the endorsement phase (and for queries). `None`
    /// disables the timer entirely — zero-cost when off.
    endorse_timeout: Option<SimDuration>,
    /// Deadline for the commit-wait phase.
    commit_timeout: Option<SimDuration>,
    next_deadline_token: u64,
    /// Maps an armed deadline token back to its transaction.
    deadline_tx: HashMap<u64, TxId>,
    /// OR-ed into every deadline token so several gateways embedded in one
    /// host actor allocate disjoint token spaces. Zero (the default, and
    /// always gateway 0 in a deployment) reproduces the single-gateway
    /// token stream exactly.
    token_salt: u64,
}

impl Gateway {
    /// Creates a gateway.
    ///
    /// `endorsements_needed` is how many successful endorsements to collect
    /// before submitting (derive it from the chaincode's policy via
    /// [`crate::EndorsementPolicy::min_endorsers`]).
    ///
    /// # Panics
    ///
    /// Panics if `endorsers` is empty or `endorsements_needed` exceeds the
    /// endorser count.
    pub fn new(
        identity: SigningIdentity,
        channel: impl Into<ChannelId>,
        endorsers: Vec<ActorId>,
        orderer: ActorId,
        endorsements_needed: usize,
        costs: CostModel,
    ) -> Self {
        assert!(!endorsers.is_empty(), "gateway needs at least one endorser");
        assert!(
            endorsements_needed >= 1 && endorsements_needed <= endorsers.len(),
            "endorsements_needed must be in 1..=endorsers.len()"
        );
        Gateway {
            identity,
            channel: channel.into(),
            endorsers,
            orderer,
            endorsements_needed,
            costs,
            nonce: 0,
            inflight: HashMap::new(),
            endorse_timeout: None,
            commit_timeout: None,
            next_deadline_token: 0,
            deadline_tx: HashMap::new(),
            token_salt: 0,
        }
    }

    /// Sets the deadline-token salt for a gateway embedded alongside
    /// others in the same host actor (use a distinct per-gateway value,
    /// e.g. `(index as u64) << 32`).
    #[must_use]
    pub fn with_token_salt(mut self, salt: u64) -> Self {
        debug_assert_eq!(
            salt & (GATEWAY_TOKEN_BIT | hyperprov_sim::HARNESS_TOKEN_BIT),
            0,
            "token salt must not collide with the namespace tag bits"
        );
        self.token_salt = salt;
        self
    }

    /// Arms per-op deadlines: `endorse` bounds the endorsement/query phase,
    /// `commit` bounds the commit-wait phase. `None` leaves a phase
    /// unbounded (the default — no timers are ever set, so a gateway
    /// without deadlines behaves exactly as before they existed).
    ///
    /// The host actor must route timer tokens for which
    /// [`Gateway::owns_timer`] is true into [`Gateway::on_timer`].
    #[must_use]
    pub fn with_deadlines(
        mut self,
        endorse: Option<SimDuration>,
        commit: Option<SimDuration>,
    ) -> Self {
        self.endorse_timeout = endorse;
        self.commit_timeout = commit;
        self
    }

    /// True when `token` is a deadline timer owned by a gateway (route it
    /// to [`Gateway::on_timer`]).
    pub fn owns_timer(token: u64) -> bool {
        token & GATEWAY_TOKEN_BIT != 0 && token & hyperprov_sim::HARNESS_TOKEN_BIT == 0
    }

    fn arm_deadline<M>(
        &mut self,
        ctx: &mut Context<'_, M>,
        tx_id: TxId,
        timeout: Option<SimDuration>,
    ) -> Option<(u64, TimerId)> {
        let timeout = timeout?;
        self.next_deadline_token += 1;
        let token = GATEWAY_TOKEN_BIT | self.token_salt | self.next_deadline_token;
        self.deadline_tx.insert(token, tx_id);
        let timer = ctx.set_timer(timeout, token);
        Some((token, timer))
    }

    /// Cancels and forgets an armed deadline.
    fn disarm<M>(&mut self, ctx: &mut Context<'_, M>, deadline: Option<(u64, TimerId)>) {
        if let Some((token, timer)) = deadline {
            self.deadline_tx.remove(&token);
            ctx.cancel_timer(timer);
        }
    }

    /// The client certificate this gateway signs with.
    pub fn identity(&self) -> &SigningIdentity {
        &self.identity
    }

    /// The channel this gateway submits to.
    pub fn channel(&self) -> &ChannelId {
        &self.channel
    }

    /// True when this gateway has `tx_id` in flight (used by hosts with
    /// several gateways to route responses to the right one).
    pub fn knows(&self, tx_id: &TxId) -> bool {
        self.inflight.contains_key(tx_id)
    }

    /// True when this gateway armed the deadline `token` (used by hosts
    /// with several gateways to route timers to the right one).
    pub fn owns_deadline(&self, token: u64) -> bool {
        self.deadline_tx.contains_key(&token)
    }

    /// Number of transactions/queries awaiting completion.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Builds and signs a proposal, returning it together with its tx id
    /// and wire size. The canonical encoding is produced exactly once:
    /// the signature covers it, the tx id is its digest and the wire size
    /// is its length.
    fn make_signed<M: Carries<FabricMsg>>(
        &mut self,
        ctx: &mut Context<'_, M>,
        harness: &mut ServiceHarness<M>,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> (SignedProposal, TxId, u64) {
        self.nonce += 1;
        let proposal = Proposal {
            channel: self.channel.clone(),
            chaincode: chaincode.to_owned(),
            function: function.to_owned(),
            args,
            creator: self.identity.certificate().clone(),
            nonce: self.nonce,
        };
        let bytes = proposal.to_bytes();
        let tx_id = TxId(Digest::of(&bytes));
        // Charge client CPU (signing + hashing); results ship immediately —
        // the charge models utilisation/energy, not a response gate.
        harness.charge(ctx, self.costs.client_proposal_cost(bytes.len() as u64));
        let sp = SignedProposal {
            signature: self.identity.sign(&bytes),
            proposal,
        };
        (sp, tx_id, bytes.len() as u64)
    }

    /// Starts a full transaction: endorse on `endorsements_needed`
    /// endorsers, then order, then wait for the commit event.
    ///
    /// `harness` is the host actor's service harness; it absorbs the
    /// client-side CPU charge for signing the proposal.
    pub fn invoke<M: Carries<FabricMsg>>(
        &mut self,
        ctx: &mut Context<'_, M>,
        harness: &mut ServiceHarness<M>,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> TxId {
        let (sp, tx_id, wire) = self.make_signed(ctx, harness, chaincode, function, args);
        // The endorse span covers the whole client-side collection phase:
        // it closes in `submit` (or on failure), where `commit_wait` opens.
        ctx.span_start(&tx_trace(&tx_id), "endorse", "");
        let deadline = self.arm_deadline(ctx, tx_id, self.endorse_timeout);
        self.inflight.insert(
            tx_id,
            Inflight::Tx {
                started: ctx.now(),
                needed: self.endorsements_needed,
                proposal: Box::new(sp.proposal.clone()),
                responses: Vec::new(),
                submitted: false,
                deadline,
            },
        );
        let bytes = wire + 32;
        // The last endorser gets the proposal by move, the rest by clone.
        let mut sp = Some(sp);
        for i in 0..self.endorsements_needed {
            let dst = self.endorsers[i];
            let msg = if i + 1 == self.endorsements_needed {
                sp.take().expect("sent exactly once")
            } else {
                sp.as_ref().expect("taken only on the last send").clone()
            };
            ctx.send(dst, bytes, M::wrap(FabricMsg::SubmitProposal(msg)));
        }
        tx_id
    }

    /// Starts an endorse-only query against the first endorser.
    pub fn query<M: Carries<FabricMsg>>(
        &mut self,
        ctx: &mut Context<'_, M>,
        harness: &mut ServiceHarness<M>,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> TxId {
        let (sp, tx_id, wire) = self.make_signed(ctx, harness, chaincode, function, args);
        ctx.span_start(&tx_trace(&tx_id), "query", "");
        let deadline = self.arm_deadline(ctx, tx_id, self.endorse_timeout);
        self.inflight.insert(
            tx_id,
            Inflight::Query {
                started: ctx.now(),
                deadline,
            },
        );
        let bytes = wire + 32;
        let dst = self.endorsers[0];
        ctx.send(dst, bytes, M::wrap(FabricMsg::SubmitProposal(sp)));
        tx_id
    }

    /// Feeds an incoming Fabric message to the gateway. Returns any
    /// completions. Non-gateway messages are ignored.
    pub fn handle<M: Carries<FabricMsg>>(
        &mut self,
        ctx: &mut Context<'_, M>,
        msg: FabricMsg,
    ) -> Vec<GatewayEvent> {
        match msg {
            FabricMsg::ProposalResult(resp) => self.on_response(ctx, resp),
            FabricMsg::Commit(event) => self.on_commit(ctx, event),
            _ => Vec::new(),
        }
    }

    fn on_response<M: Carries<FabricMsg>>(
        &mut self,
        ctx: &mut Context<'_, M>,
        resp: ProposalResponse,
    ) -> Vec<GatewayEvent> {
        let tx_id = resp.tx_id;
        match self.inflight.get_mut(&tx_id) {
            Some(Inflight::Query { started, .. }) => {
                let latency = ctx.now() - *started;
                let mut entry = self
                    .inflight
                    .remove(&tx_id)
                    .expect("invariant: entry matched above");
                let deadline = entry.take_deadline();
                self.disarm(ctx, deadline);
                ctx.span_end(&tx_trace(&tx_id), "query", "");
                vec![GatewayEvent::QueryDone {
                    tx_id,
                    result: resp.result.map_err(GatewayError::from_query),
                    latency,
                }]
            }
            Some(Inflight::Tx {
                needed,
                responses,
                submitted,
                ..
            }) => {
                if *submitted {
                    return Vec::new(); // stale extra endorsement
                }
                if let Err(reason) = &resp.result {
                    // Fail fast, as the Fabric SDK does.
                    let reason = reason.clone();
                    let mut entry = self
                        .inflight
                        .remove(&tx_id)
                        .expect("invariant: entry matched above");
                    let deadline = entry.take_deadline();
                    self.disarm(ctx, deadline);
                    ctx.span_end(&tx_trace(&tx_id), "endorse", "");
                    ctx.trace_event(&tx_trace(&tx_id), "endorse.rejected", &reason);
                    return vec![GatewayEvent::TxFailed {
                        tx_id,
                        error: GatewayError::from_endorsement(reason),
                    }];
                }
                responses.push(resp);
                if responses.len() < *needed {
                    return Vec::new();
                }
                // All endorsements collected: check they agree.
                let first = &responses[0];
                let agree = responses
                    .iter()
                    .all(|r| r.rwset == first.rwset && r.result == first.result);
                if !agree {
                    let mut entry = self
                        .inflight
                        .remove(&tx_id)
                        .expect("invariant: entry matched above");
                    let deadline = entry.take_deadline();
                    self.disarm(ctx, deadline);
                    ctx.span_end(&tx_trace(&tx_id), "endorse", "");
                    ctx.trace_event(&tx_trace(&tx_id), "endorse.mismatch", "");
                    return vec![GatewayEvent::TxFailed {
                        tx_id,
                        error: GatewayError::Mismatch,
                    }];
                }
                self.submit(ctx, tx_id);
                Vec::new()
            }
            None => Vec::new(),
        }
    }

    /// Assembles the envelope from the stored proposal and collected
    /// endorsements and broadcasts it to the orderer.
    fn submit<M: Carries<FabricMsg>>(&mut self, ctx: &mut Context<'_, M>, tx_id: TxId) {
        let (envelope, old_deadline) = {
            let Some(Inflight::Tx {
                proposal,
                responses,
                submitted,
                deadline,
                ..
            }) = self.inflight.get_mut(&tx_id)
            else {
                return;
            };
            let first = responses
                .first()
                .expect("invariant: submit runs only after `needed >= 1` endorsements collected");
            let envelope = Envelope {
                proposal: proposal.as_ref().clone(),
                payload: first.result.clone().unwrap_or_default(),
                rwset: first.rwset.clone(),
                event: first.event.clone(),
                endorsements: responses
                    .iter()
                    .map(|r| Endorsement {
                        endorser: r.endorser.clone(),
                        signature: r.signature,
                    })
                    .collect(),
            };
            *submitted = true;
            (envelope, deadline.take())
        };
        // The endorsement phase met its deadline; re-arm for commit-wait so
        // a lost broadcast or commit notification cannot wedge the client.
        self.disarm(ctx, old_deadline);
        let commit_deadline = self.arm_deadline(ctx, tx_id, self.commit_timeout);
        if let Some(Inflight::Tx { deadline, .. }) = self.inflight.get_mut(&tx_id) {
            *deadline = commit_deadline;
        }
        let bytes = envelope.wire_size();
        let orderer = self.orderer;
        ctx.send(orderer, bytes, M::wrap(FabricMsg::Broadcast(envelope)));
        // Endorsements are in; from here the client just waits for the
        // commit notification. The two spans are contiguous, so their
        // durations sum exactly to the end-to-end invoke latency.
        let trace = tx_trace(&tx_id);
        ctx.span_end(&trace, "endorse", "");
        ctx.span_start(&trace, "commit_wait", "");
    }

    fn on_commit<M: Carries<FabricMsg>>(
        &mut self,
        ctx: &mut Context<'_, M>,
        event: CommitEvent,
    ) -> Vec<GatewayEvent> {
        match self.inflight.remove(&event.tx_id) {
            Some(Inflight::Tx {
                started,
                responses,
                deadline,
                ..
            }) => {
                self.disarm(ctx, deadline);
                let latency = ctx.now() - started;
                ctx.span_end(&tx_trace(&event.tx_id), "commit_wait", "");
                let payload = responses
                    .first()
                    .and_then(|r| r.result.clone().ok())
                    .unwrap_or_default();
                vec![GatewayEvent::TxCommitted {
                    tx_id: event.tx_id,
                    code: event.code,
                    latency,
                    payload,
                }]
            }
            Some(other) => {
                // A query cannot commit; put it back.
                self.inflight.insert(event.tx_id, other);
                Vec::new()
            }
            None => Vec::new(),
        }
    }

    /// Handles a deadline timer (a token for which [`Gateway::owns_timer`]
    /// is true). The expired operation is abandoned: its open span closes,
    /// its pending-tx entry is removed — nothing can leak — and a
    /// [`GatewayEvent::TxFailed`] / [`GatewayEvent::QueryDone`] with the
    /// matching timeout error is returned. Tokens of already-finished
    /// operations return no events.
    pub fn on_timer<M>(&mut self, ctx: &mut Context<'_, M>, token: u64) -> Vec<GatewayEvent> {
        let Some(tx_id) = self.deadline_tx.remove(&token) else {
            return Vec::new();
        };
        let Some(entry) = self.inflight.remove(&tx_id) else {
            return Vec::new();
        };
        let trace = tx_trace(&tx_id);
        match entry {
            Inflight::Tx {
                submitted: true, ..
            } => {
                ctx.span_end(&trace, "commit_wait", "");
                ctx.trace_event(&trace, "commit.timeout", "");
                vec![GatewayEvent::TxFailed {
                    tx_id,
                    error: GatewayError::CommitTimeout,
                }]
            }
            Inflight::Tx { .. } => {
                ctx.span_end(&trace, "endorse", "");
                ctx.trace_event(&trace, "endorse.timeout", "");
                vec![GatewayEvent::TxFailed {
                    tx_id,
                    error: GatewayError::EndorseTimeout,
                }]
            }
            Inflight::Query { started, .. } => {
                let latency = ctx.now() - started;
                ctx.span_end(&trace, "query", "");
                ctx.trace_event(&trace, "query.timeout", "");
                vec![GatewayEvent::QueryDone {
                    tx_id,
                    result: Err(GatewayError::EndorseTimeout),
                    latency,
                }]
            }
        }
    }
}
