//! The chaincode programming model: the [`Chaincode`] trait and the
//! [`ChaincodeStub`] shim through which contract code reads and writes the
//! ledger.
//!
//! Execution follows Fabric's simulate-then-order model: a stub wraps an
//! immutable snapshot of the state/history databases and records every
//! access into a [`RwSet`]. Like Fabric, a transaction **cannot read its
//! own writes** — `get_state` always returns committed state — and range
//! queries observe committed state only.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use hyperprov_ledger::{
    HistoryDb, HistoryEntry, KvRead, KvWrite, Ns, ProvGraph, RwSet, StateDb, StateKey,
};

use crate::identity::Certificate;

/// Minimum-unicode delimiter used by composite keys, as in Fabric.
pub const COMPOSITE_SEP: char = '\u{1}';

/// Error raised by chaincode logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaincodeError {
    /// The function name is not part of this contract.
    UnknownFunction(String),
    /// The arguments are malformed.
    BadArgs(String),
    /// A referenced key does not exist.
    NotFound(String),
    /// A domain rule was violated (e.g. duplicate key, unauthorised caller).
    Rejected(String),
}

impl fmt::Display for ChaincodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaincodeError::UnknownFunction(name) => write!(f, "unknown function {name:?}"),
            ChaincodeError::BadArgs(why) => write!(f, "bad arguments: {why}"),
            ChaincodeError::NotFound(key) => write!(f, "key not found: {key}"),
            ChaincodeError::Rejected(why) => write!(f, "rejected: {why}"),
        }
    }
}

impl std::error::Error for ChaincodeError {}

/// Resource usage of one chaincode invocation, fed to the CPU cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StubStats {
    /// Number of `get_state`/history/range point reads.
    pub reads: u64,
    /// Number of `put_state`/`del_state` calls.
    pub writes: u64,
    /// Total bytes returned by reads.
    pub bytes_read: u64,
    /// Total bytes submitted by writes.
    pub bytes_written: u64,
    /// Keys visited by range/prefix scans.
    pub scanned: u64,
}

/// The shim handed to chaincode during simulation.
pub struct ChaincodeStub<'a> {
    namespace: &'a str,
    /// The namespace interned once per invocation; every state key built
    /// below shares this allocation instead of re-interning per access.
    ns: Ns,
    function: &'a str,
    args: &'a [Vec<u8>],
    creator: &'a Certificate,
    state: &'a StateDb,
    history: &'a HistoryDb,
    graph: Option<&'a ProvGraph>,
    rwset: RwSet,
    read_keys: HashMap<StateKey, ()>,
    write_index: HashMap<StateKey, usize>,
    event: Option<(String, Vec<u8>)>,
    stats: StubStats,
}

impl<'a> ChaincodeStub<'a> {
    /// Creates a stub for one invocation over committed state.
    pub fn new(
        namespace: &'a str,
        function: &'a str,
        args: &'a [Vec<u8>],
        creator: &'a Certificate,
        state: &'a StateDb,
        history: &'a HistoryDb,
    ) -> Self {
        ChaincodeStub {
            namespace,
            ns: Ns::intern(namespace),
            function,
            args,
            creator,
            state,
            history,
            graph: None,
            rwset: RwSet::new(),
            read_keys: HashMap::new(),
            write_index: HashMap::new(),
            event: None,
            stats: StubStats::default(),
        }
    }

    /// Attaches the channel's materialized provenance DAG index, giving
    /// graph query functions an in-memory adjacency structure instead of
    /// hop-by-hop state reads.
    #[must_use]
    pub fn with_graph(mut self, graph: &'a ProvGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The channel's provenance graph index, when the hosting peer
    /// exposes one (read-only; traversals leave the read set untouched).
    pub fn graph(&self) -> Option<&'a ProvGraph> {
        self.graph
    }

    /// Accounts `nodes` graph-index node visits returning `bytes` total,
    /// so the CPU cost model charges traversals like point reads.
    pub fn note_graph_visits(&mut self, nodes: u64, bytes: u64) {
        self.stats.reads += nodes;
        self.stats.bytes_read += bytes;
    }

    /// The invoked function name.
    pub fn function(&self) -> &str {
        self.function
    }

    /// The invocation arguments (after the function name).
    pub fn args(&self) -> &[Vec<u8>] {
        self.args
    }

    /// Argument `i` as a UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`ChaincodeError::BadArgs`] if the argument is missing or
    /// not valid UTF-8.
    pub fn arg_str(&self, i: usize) -> Result<&str, ChaincodeError> {
        let raw = self
            .args
            .get(i)
            .ok_or_else(|| ChaincodeError::BadArgs(format!("missing argument {i}")))?;
        std::str::from_utf8(raw)
            .map_err(|_| ChaincodeError::BadArgs(format!("argument {i} is not UTF-8")))
    }

    /// Argument `i` as raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ChaincodeError::BadArgs`] if the argument is missing.
    pub fn arg_bytes(&self, i: usize) -> Result<&[u8], ChaincodeError> {
        self.args
            .get(i)
            .map(Vec::as_slice)
            .ok_or_else(|| ChaincodeError::BadArgs(format!("missing argument {i}")))
    }

    /// Number of arguments.
    pub fn arg_count(&self) -> usize {
        self.args.len()
    }

    /// The certificate of the client that submitted the proposal —
    /// HyperProv records this as the data owner.
    pub fn creator(&self) -> &Certificate {
        self.creator
    }

    /// Reads committed state, recording the read version. Per Fabric
    /// semantics this does **not** observe writes made earlier in this
    /// same invocation.
    pub fn get_state(&mut self, key: &str) -> Option<Vec<u8>> {
        let skey = StateKey::new(self.ns.clone(), key);
        let vv = self.state.get(&skey);
        if !self.read_keys.contains_key(&skey) {
            self.read_keys.insert(skey.clone(), ());
            self.rwset.reads.push(KvRead {
                key: skey,
                version: vv.map(|v| v.version),
            });
        }
        self.stats.reads += 1;
        let value = vv.map(|v| v.value.clone());
        self.stats.bytes_read += value.as_ref().map(Vec::len).unwrap_or(0) as u64;
        value
    }

    /// Writes a key (visible only after commit). Last write per key wins.
    pub fn put_state(&mut self, key: &str, value: Vec<u8>) {
        self.stats.writes += 1;
        self.stats.bytes_written += value.len() as u64;
        self.upsert_write(key, Some(value));
    }

    /// Deletes a key at commit time.
    pub fn del_state(&mut self, key: &str) {
        self.stats.writes += 1;
        self.upsert_write(key, None);
    }

    fn upsert_write(&mut self, key: &str, value: Option<Vec<u8>>) {
        let skey = StateKey::new(self.ns.clone(), key);
        match self.write_index.get(&skey) {
            Some(&idx) => self.rwset.writes[idx].value = value,
            None => {
                self.write_index
                    .insert(skey.clone(), self.rwset.writes.len());
                self.rwset.writes.push(KvWrite { key: skey, value });
            }
        }
    }

    /// The committed write history of `key`, oldest first.
    pub fn get_history_for_key(&mut self, key: &str) -> Vec<HistoryEntry> {
        let skey = StateKey::new(self.ns.clone(), key);
        let entries = self.history.history(&skey).to_vec();
        self.stats.reads += 1;
        self.stats.bytes_read += entries
            .iter()
            .map(|e| e.value.as_ref().map(Vec::len).unwrap_or(0) as u64)
            .sum::<u64>();
        entries
    }

    /// Committed keys in `[start, end)` (empty `end` = to namespace end).
    pub fn get_state_by_range(&mut self, start: &str, end: &str) -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for (k, vv) in self.state.range(self.namespace, start, end) {
            self.stats.scanned += 1;
            self.stats.bytes_read += vv.value.len() as u64;
            out.push((k.key.clone(), vv.value.clone()));
        }
        out
    }

    /// Builds a composite key `objectType + SEP + attr1 + SEP + ...`.
    ///
    /// # Errors
    ///
    /// Returns [`ChaincodeError::BadArgs`] if any component contains the
    /// separator character.
    pub fn create_composite_key(
        &self,
        object_type: &str,
        attributes: &[&str],
    ) -> Result<String, ChaincodeError> {
        let mut key = String::with_capacity(object_type.len() + 8);
        for part in std::iter::once(object_type).chain(attributes.iter().copied()) {
            if part.contains(COMPOSITE_SEP) {
                return Err(ChaincodeError::BadArgs(
                    "composite key component contains separator".to_owned(),
                ));
            }
            key.push_str(part);
            key.push(COMPOSITE_SEP);
        }
        Ok(key)
    }

    /// Splits a composite key back into object type and attributes.
    pub fn split_composite_key(key: &str) -> Vec<&str> {
        key.split(COMPOSITE_SEP).filter(|s| !s.is_empty()).collect()
    }

    /// Committed keys matching a composite-key prefix.
    ///
    /// # Errors
    ///
    /// Returns [`ChaincodeError::BadArgs`] if a component is malformed.
    pub fn get_state_by_partial_composite_key(
        &mut self,
        object_type: &str,
        attributes: &[&str],
    ) -> Result<Vec<(String, Vec<u8>)>, ChaincodeError> {
        let prefix = self.create_composite_key(object_type, attributes)?;
        let mut out = Vec::new();
        for (k, vv) in self.state.scan_prefix(self.namespace, &prefix) {
            self.stats.scanned += 1;
            self.stats.bytes_read += vv.value.len() as u64;
            out.push((k.key.clone(), vv.value.clone()));
        }
        Ok(out)
    }

    /// Attaches a chaincode event emitted with the transaction.
    pub fn set_event(&mut self, name: &str, payload: Vec<u8>) {
        self.event = Some((name.to_owned(), payload));
    }

    /// Finishes the simulation, yielding the read/write set, the optional
    /// event and the resource stats.
    pub fn into_results(self) -> (RwSet, Option<(String, Vec<u8>)>, StubStats) {
        (self.rwset, self.event, self.stats)
    }
}

impl fmt::Debug for ChaincodeStub<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaincodeStub")
            .field("namespace", &self.namespace)
            .field("function", &self.function)
            .field("reads", &self.rwset.reads.len())
            .field("writes", &self.rwset.writes.len())
            .finish()
    }
}

/// A smart contract installed on peers.
///
/// Implementations must be deterministic: every endorsing peer runs the
/// same invocation and their read/write sets must match.
pub trait Chaincode: Send + Sync {
    /// The chaincode (namespace) name.
    fn name(&self) -> &str;

    /// Handles one invocation.
    ///
    /// # Errors
    ///
    /// Returns a [`ChaincodeError`] to reject the proposal; rejected
    /// proposals never reach ordering.
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError>;
}

/// The chaincodes installed on a peer, by namespace.
#[derive(Clone, Default)]
pub struct ChaincodeRegistry {
    map: HashMap<String, Arc<dyn Chaincode>>,
}

impl ChaincodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ChaincodeRegistry::default()
    }

    /// Installs a chaincode under its own name.
    pub fn install(&mut self, chaincode: Arc<dyn Chaincode>) {
        self.map.insert(chaincode.name().to_owned(), chaincode);
    }

    /// Looks up a chaincode by namespace.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Chaincode>> {
        self.map.get(name)
    }

    /// Number of installed chaincodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no chaincode is installed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Debug for ChaincodeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&String> = self.map.keys().collect();
        names.sort();
        f.debug_struct("ChaincodeRegistry")
            .field("installed", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::{MspBuilder, MspId};
    use hyperprov_ledger::{TxId, Version};

    fn fixtures() -> (StateDb, HistoryDb, Certificate) {
        let mut state = StateDb::new();
        state.apply_write(
            &KvWrite {
                key: StateKey::new("cc", "existing"),
                value: Some(b"old".to_vec()),
            },
            Version::new(1, 0),
        );
        let mut history = HistoryDb::new();
        history.append(
            TxId(hyperprov_ledger::Digest::of(b"t0")),
            Version::new(1, 0),
            &[KvWrite {
                key: StateKey::new("cc", "existing"),
                value: Some(b"old".to_vec()),
            }],
        );
        let mut b = MspBuilder::new(1);
        let id = b.enroll("client", &MspId::new("org1"));
        (state, history, id.certificate().clone())
    }

    #[test]
    fn reads_record_versions_once() {
        let (state, history, cert) = fixtures();
        let args = vec![];
        let mut stub = ChaincodeStub::new("cc", "f", &args, &cert, &state, &history);
        assert_eq!(stub.get_state("existing"), Some(b"old".to_vec()));
        assert_eq!(stub.get_state("existing"), Some(b"old".to_vec()));
        assert_eq!(stub.get_state("missing"), None);
        let (rwset, _, stats) = stub.into_results();
        assert_eq!(rwset.reads.len(), 2); // deduplicated
        assert_eq!(rwset.reads[0].version, Some(Version::new(1, 0)));
        assert_eq!(rwset.reads[1].version, None);
        assert_eq!(stats.reads, 3);
        assert_eq!(stats.bytes_read, 6);
    }

    #[test]
    fn no_read_your_writes() {
        let (state, history, cert) = fixtures();
        let args = vec![];
        let mut stub = ChaincodeStub::new("cc", "f", &args, &cert, &state, &history);
        stub.put_state("k", b"new".to_vec());
        // Fabric semantics: the pending write is invisible.
        assert_eq!(stub.get_state("k"), None);
        assert_eq!(stub.get_state("existing"), Some(b"old".to_vec()));
    }

    #[test]
    fn last_write_wins_per_key() {
        let (state, history, cert) = fixtures();
        let args = vec![];
        let mut stub = ChaincodeStub::new("cc", "f", &args, &cert, &state, &history);
        stub.put_state("k", b"v1".to_vec());
        stub.put_state("k", b"v2".to_vec());
        stub.del_state("gone");
        let (rwset, _, stats) = stub.into_results();
        assert_eq!(rwset.writes.len(), 2);
        assert_eq!(rwset.writes[0].value.as_deref(), Some(b"v2".as_slice()));
        assert_eq!(rwset.writes[1].value, None);
        assert_eq!(stats.writes, 3);
    }

    #[test]
    fn arg_accessors_validate() {
        let (state, history, cert) = fixtures();
        let args = vec![b"hello".to_vec(), vec![0xFF]];
        let stub = ChaincodeStub::new("cc", "f", &args, &cert, &state, &history);
        assert_eq!(stub.arg_str(0).unwrap(), "hello");
        assert!(matches!(stub.arg_str(1), Err(ChaincodeError::BadArgs(_))));
        assert!(matches!(stub.arg_str(2), Err(ChaincodeError::BadArgs(_))));
        assert_eq!(stub.arg_bytes(1).unwrap(), &[0xFF]);
        assert_eq!(stub.arg_count(), 2);
        assert_eq!(stub.function(), "f");
        assert_eq!(stub.creator().subject, "client");
    }

    #[test]
    fn composite_keys_round_trip() {
        let (state, history, cert) = fixtures();
        let args = vec![];
        let stub = ChaincodeStub::new("cc", "f", &args, &cert, &state, &history);
        let key = stub
            .create_composite_key("owner", &["org1", "item1"])
            .unwrap();
        assert_eq!(
            ChaincodeStub::split_composite_key(&key),
            vec!["owner", "org1", "item1"]
        );
        assert!(stub
            .create_composite_key("bad", &[&format!("a{COMPOSITE_SEP}b")])
            .is_err());
    }

    #[test]
    fn partial_composite_key_scan() {
        let (mut state, history, cert) = fixtures();
        // Seed composite keys directly.
        for (owner, item) in [("org1", "a"), ("org1", "b"), ("org2", "c")] {
            let key = format!("own{COMPOSITE_SEP}{owner}{COMPOSITE_SEP}{item}{COMPOSITE_SEP}");
            state.apply_write(
                &KvWrite {
                    key: StateKey::new("cc", &key),
                    value: Some(item.as_bytes().to_vec()),
                },
                Version::new(2, 0),
            );
        }
        let args = vec![];
        let mut stub = ChaincodeStub::new("cc", "f", &args, &cert, &state, &history);
        let hits = stub
            .get_state_by_partial_composite_key("own", &["org1"])
            .unwrap();
        assert_eq!(hits.len(), 2);
        let (_, _, stats) = stub.into_results();
        assert_eq!(stats.scanned, 2);
    }

    #[test]
    fn history_query_returns_committed_entries() {
        let (state, history, cert) = fixtures();
        let args = vec![];
        let mut stub = ChaincodeStub::new("cc", "f", &args, &cert, &state, &history);
        let h = stub.get_history_for_key("existing");
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].value.as_deref(), Some(b"old".as_slice()));
        assert!(stub.get_history_for_key("missing").is_empty());
    }

    #[test]
    fn events_captured() {
        let (state, history, cert) = fixtures();
        let args = vec![];
        let mut stub = ChaincodeStub::new("cc", "f", &args, &cert, &state, &history);
        stub.set_event("posted", b"payload".to_vec());
        let (_, event, _) = stub.into_results();
        assert_eq!(event, Some(("posted".to_owned(), b"payload".to_vec())));
    }

    struct Echo;
    impl Chaincode for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
            Ok(stub.arg_bytes(0)?.to_vec())
        }
    }

    #[test]
    fn registry_installs_and_dispatches() {
        let mut reg = ChaincodeRegistry::new();
        assert!(reg.is_empty());
        reg.install(Arc::new(Echo));
        assert_eq!(reg.len(), 1);
        let cc = reg.get("echo").unwrap().clone();
        let (state, history, cert) = fixtures();
        let args = vec![b"x".to_vec()];
        let mut stub = ChaincodeStub::new("echo", "any", &args, &cert, &state, &history);
        assert_eq!(cc.invoke(&mut stub).unwrap(), b"x".to_vec());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ChaincodeError::UnknownFunction("f".into()),
            ChaincodeError::BadArgs("why".into()),
            ChaincodeError::NotFound("k".into()),
            ChaincodeError::Rejected("no".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
