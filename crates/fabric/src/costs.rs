//! The CPU cost model: how much reference-CPU time each pipeline step
//! consumes.
//!
//! Costs are expressed as virtual time *on the reference core* (a 2.8 GHz
//! desktop-class CPU ≈ the paper's Xeon E5-1603); the simulator divides by
//! each node's speed factor, so the same table produces desktop and
//! Raspberry Pi behaviour. The constants are calibrated against published
//! Fabric measurements (Thakkar et al., MASCOTS '18; the HyperProv thesis)
//! to land endorsement latency in the low milliseconds and commit
//! throughput in the low hundreds of tx/s on desktop hardware.

use hyperprov_sim::SimDuration;

use crate::chaincode::StubStats;
use crate::messages::{Envelope, Proposal};

/// Reference-CPU cost table for peers, orderers and clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Hashing cost per byte (SHA-256 of payloads, envelope digests).
    pub hash_per_byte: SimDuration,
    /// Producing one signature.
    pub sign: SimDuration,
    /// Verifying one signature.
    pub verify: SimDuration,
    /// Fixed chaincode invocation overhead (shim dispatch; Fabric pays a
    /// container round-trip here).
    pub exec_base: SimDuration,
    /// One state read/write/history operation inside chaincode.
    pub state_op: SimDuration,
    /// Marginal cost per byte moved through chaincode or commit I/O.
    pub per_io_byte: SimDuration,
    /// Per-transaction commit work (VSCC setup + bookkeeping), beyond
    /// signature verification.
    pub commit_per_tx: SimDuration,
    /// Per-block commit overhead (header checks, batch write).
    pub block_base: SimDuration,
    /// Orderer's per-envelope admission work.
    pub order_per_msg: SimDuration,
    /// Serving one verification or state read from a warm in-memory cache
    /// (hash + lookup) instead of doing the full work.
    pub cache_hit_op: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            hash_per_byte: SimDuration::from_nanos(3),
            sign: SimDuration::from_micros(250),
            verify: SimDuration::from_micros(350),
            exec_base: SimDuration::from_micros(1800),
            state_op: SimDuration::from_micros(60),
            per_io_byte: SimDuration::from_nanos(12),
            commit_per_tx: SimDuration::from_micros(400),
            block_base: SimDuration::from_micros(900),
            order_per_msg: SimDuration::from_micros(80),
            cache_hit_op: SimDuration::from_micros(5),
        }
    }
}

impl CostModel {
    /// Cost of hashing `bytes` bytes (e.g. the client-side checksum of a
    /// data item before posting).
    pub fn hash_cost(&self, bytes: u64) -> SimDuration {
        self.hash_per_byte * bytes
    }

    /// Endorsing peer's cost for one proposal: verify the client
    /// signature, run the chaincode, sign the response.
    pub fn endorse_cost(&self, proposal: &Proposal, stats: &StubStats) -> SimDuration {
        let arg_bytes: u64 = proposal.args.iter().map(|a| a.len() as u64).sum();
        self.verify
            + self.exec_base
            + self.state_op * (stats.reads + stats.writes + stats.scanned)
            + self.per_io_byte * (stats.bytes_read + stats.bytes_written + arg_bytes)
            + self.sign
    }

    /// Committing peer's cost to validate one envelope: verify each
    /// endorsement, policy evaluation and MVCC bookkeeping.
    pub fn validate_cost(&self, envelope: &Envelope) -> SimDuration {
        self.verify * envelope.endorsements.len() as u64 + self.commit_per_tx
    }

    /// Parallelisable half of [`CostModel::validate_cost`]: the stateless
    /// VSCC work for one envelope, with cache-served verifications charged
    /// at [`CostModel::cache_hit_op`]. With no cache hits,
    /// `vscc_cost(n, 0) + mvcc_cost()` equals `validate_cost` for an
    /// envelope with `n` endorsements.
    pub fn vscc_cost(&self, sig_misses: u64, sig_hits: u64) -> SimDuration {
        self.verify * sig_misses + self.cache_hit_op * sig_hits
    }

    /// Serial half of [`CostModel::validate_cost`]: per-transaction MVCC
    /// bookkeeping that must run in block order.
    pub fn mvcc_cost(&self) -> SimDuration {
        self.commit_per_tx
    }

    /// Committing peer's cost to apply a validated write set.
    pub fn apply_cost(&self, write_bytes: u64, writes: u64) -> SimDuration {
        self.state_op * writes + self.per_io_byte * write_bytes
    }

    /// Per-block fixed commit cost.
    pub fn block_cost(&self, block_bytes: u64) -> SimDuration {
        self.block_base + self.hash_cost(block_bytes)
    }

    /// Orderer admission cost for one envelope of the given size.
    pub fn order_cost(&self, envelope_bytes: u64) -> SimDuration {
        self.order_per_msg + self.hash_cost(envelope_bytes)
    }

    /// Client cost to build and sign one proposal.
    pub fn client_proposal_cost(&self, proposal_bytes: u64) -> SimDuration {
        self.sign + self.hash_cost(proposal_bytes)
    }

    /// Committing peer's cost to cut a state snapshot: serialize and hash
    /// every entry (a warm in-memory copy per entry plus the Merkle/chunk
    /// digests over the serialized bytes).
    pub fn snapshot_capture_cost(&self, entries: u64, bytes: u64) -> SimDuration {
        self.block_base
            + self.cache_hit_op * entries
            + self.hash_cost(bytes)
            + self.per_io_byte * bytes
    }

    /// Restarting peer's cost to restore a snapshot: re-verify the part
    /// digests and rebuild the state/history/graph indexes entry by entry.
    pub fn snapshot_restore_cost(&self, entries: u64, bytes: u64) -> SimDuration {
        self.block_base + self.state_op * entries + self.hash_cost(bytes)
    }

    /// Cost to serve or ingest one snapshot part on the wire (I/O plus the
    /// transfer digest check).
    pub fn snapshot_transfer_cost(&self, bytes: u64) -> SimDuration {
        self.per_io_byte * bytes + self.hash_cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::{MspBuilder, MspId};

    fn model() -> CostModel {
        CostModel::default()
    }

    fn proposal(arg_bytes: usize) -> Proposal {
        let mut b = MspBuilder::new(1);
        let id = b.enroll("c", &MspId::new("org1"));
        Proposal {
            channel: "ch".into(),
            chaincode: "cc".into(),
            function: "f".into(),
            args: vec![vec![0u8; arg_bytes]],
            creator: id.certificate().clone(),
            nonce: 1,
        }
    }

    #[test]
    fn hash_cost_scales_linearly() {
        let m = model();
        assert_eq!(m.hash_cost(0), SimDuration::ZERO);
        assert_eq!(
            m.hash_cost(2000).as_nanos(),
            2 * m.hash_cost(1000).as_nanos()
        );
    }

    #[test]
    fn endorse_cost_grows_with_work() {
        let m = model();
        let p = proposal(10);
        let light = StubStats {
            reads: 1,
            writes: 1,
            ..StubStats::default()
        };
        let heavy = StubStats {
            reads: 10,
            writes: 10,
            bytes_read: 1 << 20,
            bytes_written: 1 << 20,
            scanned: 100,
        };
        assert!(m.endorse_cost(&p, &heavy) > m.endorse_cost(&p, &light));
        // Base cost present even with no state work.
        assert!(m.endorse_cost(&p, &StubStats::default()) >= m.exec_base);
    }

    #[test]
    fn validate_cost_counts_endorsements() {
        let m = model();
        let mk = |n: usize| Envelope {
            proposal: proposal(1),
            payload: Vec::new(),
            rwset: hyperprov_ledger::RwSet::new(),
            event: None,
            endorsements: vec![
                crate::messages::Endorsement {
                    endorser: proposal(1).creator,
                    signature: crate::identity::Signature(hyperprov_ledger::Digest::ZERO),
                };
                n
            ],
        };
        assert!(m.validate_cost(&mk(4)) > m.validate_cost(&mk(1)));
        // The split phases partition the legacy per-envelope cost exactly.
        for n in [0u64, 1, 4] {
            assert_eq!(
                m.vscc_cost(n, 0) + m.mvcc_cost(),
                m.validate_cost(&mk(n as usize))
            );
        }
        // A cache hit is strictly cheaper than a cryptographic check.
        assert!(m.vscc_cost(0, 1) < m.vscc_cost(1, 0));
    }

    #[test]
    fn snapshot_costs_scale_with_state_not_chain() {
        let m = model();
        // Capture and restore grow with the state size...
        assert!(
            m.snapshot_capture_cost(1000, 1 << 20) > m.snapshot_capture_cost(10, 1 << 10),
            "capture must scale with entries and bytes"
        );
        assert!(
            m.snapshot_restore_cost(1000, 1 << 20) > m.snapshot_restore_cost(10, 1 << 10),
            "restore must scale with entries and bytes"
        );
        // ...but carry a fixed floor even for an empty state.
        assert!(m.snapshot_capture_cost(0, 0) >= m.block_base);
        assert!(m.snapshot_restore_cost(0, 0) >= m.block_base);
        // Restoring re-applies entries at full state-op cost, so it is
        // dearer per entry than the warm-copy capture.
        let delta = 10_000u64;
        assert!(
            m.snapshot_restore_cost(delta, 0) > m.snapshot_capture_cost(delta, 0) - m.block_base,
            "restore per-entry work must dominate capture's warm copies"
        );
        // Wire transfer is linear in bytes and free for an empty part.
        assert_eq!(m.snapshot_transfer_cost(0), SimDuration::ZERO);
        assert_eq!(
            m.snapshot_transfer_cost(4096).as_nanos(),
            4 * m.snapshot_transfer_cost(1024).as_nanos()
        );
    }

    #[test]
    fn endorsement_latency_in_expected_band() {
        // Sanity: a metadata-only post on the reference CPU should land in
        // the low single-digit milliseconds, matching Fabric measurements.
        let m = model();
        let p = proposal(200);
        let stats = StubStats {
            reads: 2,
            writes: 1,
            bytes_read: 300,
            bytes_written: 300,
            scanned: 0,
        };
        let cost = m.endorse_cost(&p, &stats);
        assert!(cost >= SimDuration::from_micros(1000), "{cost}");
        assert!(cost <= SimDuration::from_millis(10), "{cost}");
    }
}
