//! Simulation actors for the Fabric network: peers and ordering nodes.
//!
//! Node logic (endorsement, commit, batching, consensus) lives in the
//! sans-IO modules; the actors here glue it to the discrete-event kernel
//! through the shared [`ServiceHarness`]: they charge CPU costs, queue
//! outputs until the virtual CPU finishes, and ship messages through the
//! simulated network.
//!
//! Work is *performed* at message arrival (so state mutations happen in
//! arrival order — equivalent to a FIFO service discipline) but results
//! become *visible* only after the modelled CPU time elapses, which is
//! what produces the latency/throughput curves of the paper's figures.
//! Client-facing requests ([`FabricMsg::SubmitProposal`],
//! [`FabricMsg::Broadcast`]) pass through the harness admission queue:
//! unbounded by default, or bounded with a backpressure policy via the
//! actors' `with_queue` builders.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use hyperprov_ledger::{
    Block, ChannelId, Encode, RawEnvelope, RwSet, Snapshot, SnapshotManifest, SnapshotPart, TxId,
    DEFAULT_CHUNK_ENTRIES,
};
use hyperprov_sim::{
    Actor, ActorId, Admission, Context, Event, Outbound, QueueConfig, ServiceHarness, SimDuration,
    SpanClose, TimerId,
};

use crate::caches::{ReadCache, SigVerifyCache};
use crate::chaincode::ChaincodeRegistry;
use crate::committer::Committer;
use crate::costs::CostModel;
use crate::endorser::endorse;
use crate::identity::{CertId, SigningIdentity};
use crate::messages::{
    endorsement_message, tx_trace, CommitEvent, Envelope, ProposalResponse, SignedProposal,
};
use crate::orderer::{BatchConfig, BlockAssembler, BlockCutter};
use crate::raft::{RaftConfig, RaftMsg, RaftNode};

/// Rejection reason carried by a [`ProposalResponse`] when an endorsing
/// peer sheds a proposal at admission (bounded queue, `Nack` policy).
pub const BUSY_REASON: &str = "admission queue full";

/// Messages exchanged by Fabric nodes.
#[derive(Debug, Clone)]
pub enum FabricMsg {
    /// Client → endorsing peer.
    SubmitProposal(SignedProposal),
    /// Endorsing peer → client.
    ProposalResult(ProposalResponse),
    /// Client → orderer: an assembled transaction.
    Broadcast(Envelope),
    /// Orderer → peers: a cut block on one channel. The block is shared:
    /// an orderer fanning one block out to N peers (plus its own retained
    /// copy) clones an [`Arc`], not the payload.
    DeliverBlock(ChannelId, Arc<Block>),
    /// Peer → orderer: re-deliver blocks from a height (Fabric's deliver
    /// service; used to catch up after partitions).
    DeliverRequest {
        /// Channel whose chain has the gap.
        channel: ChannelId,
        /// First block height the peer is missing.
        from: u64,
    },
    /// Committing peer → subscribed client.
    Commit(CommitEvent),
    /// Orderer ↔ orderer consensus traffic.
    Raft(Box<RaftMsg<Vec<RawEnvelope>>>),
    /// Catch-up peer → provider peer: the snapshot catch-up protocol's
    /// opening message, asking for the latest snapshot's manifest.
    SnapshotRequest {
        /// Channel to catch up on.
        channel: ChannelId,
    },
    /// Provider peer → catch-up peer: the latest snapshot's manifest, or
    /// `None` when the provider holds no snapshot (the requester then
    /// tries its next provider or falls back to block re-delivery).
    SnapshotOffer {
        /// Channel the manifest describes.
        channel: ChannelId,
        /// The offered snapshot's manifest, if any.
        manifest: Option<Box<SnapshotManifest>>,
    },
    /// Catch-up peer → provider peer: fetch one part (a state chunk or
    /// the history/seen tail) of the offered snapshot.
    SnapshotPartRequest {
        /// Channel being caught up.
        channel: ChannelId,
        /// Height of the snapshot the part belongs to.
        height: u64,
        /// Part index within the snapshot's manifest.
        index: u32,
    },
    /// Provider peer → catch-up peer: one snapshot part, or `None` when
    /// the provider no longer holds a snapshot at that height.
    SnapshotPartData {
        /// Channel being caught up.
        channel: ChannelId,
        /// Height of the snapshot the part belongs to.
        height: u64,
        /// Part index within the snapshot's manifest.
        index: u32,
        /// The part's payload (shared, not cloned, on fan-out).
        part: Option<Arc<SnapshotPart>>,
    },
    /// Deployment → peer: start catching up on a hosted channel (the
    /// elastic-membership join hook for freshly added peers).
    JoinChannel {
        /// Channel to join.
        channel: ChannelId,
    },
    /// Deployment or peer → orderer: add `peer` to the channel's block
    /// delivery fan-out (elastic membership).
    DeliverSubscribe {
        /// Channel whose delivery list grows.
        channel: ChannelId,
        /// The peer to start delivering blocks to.
        peer: ActorId,
    },
}

impl FabricMsg {
    /// Approximate wire size used by the network model.
    pub fn wire_size(&self) -> u64 {
        match self {
            FabricMsg::SubmitProposal(sp) => sp.proposal.wire_size() + 32,
            FabricMsg::ProposalResult(pr) => pr.wire_size(),
            FabricMsg::Broadcast(env) => env.wire_size(),
            FabricMsg::DeliverBlock(_, b) => b.wire_size(),
            FabricMsg::DeliverRequest { .. } => 64,
            FabricMsg::Commit(_) => 128,
            FabricMsg::SnapshotRequest { .. } => 64,
            FabricMsg::SnapshotOffer { manifest, .. } => {
                64 + manifest.as_ref().map_or(0, |m| m.to_bytes().len() as u64)
            }
            FabricMsg::SnapshotPartRequest { .. } => 64,
            FabricMsg::SnapshotPartData { part, .. } => {
                64 + part.as_ref().map_or(0, |p| p.wire_size() as u64)
            }
            FabricMsg::JoinChannel { .. } => 64,
            FabricMsg::DeliverSubscribe { .. } => 64,
            FabricMsg::Raft(m) => match m.as_ref() {
                RaftMsg::AppendEntries { entries, .. } => {
                    128 + entries
                        .iter()
                        .map(|e| {
                            e.payload
                                .iter()
                                .map(|r| r.bytes.len() as u64 + 40)
                                .sum::<u64>()
                        })
                        .sum::<u64>()
                }
                _ => 64,
            },
        }
    }
}

pub use hyperprov_sim::Carries;

impl Carries<FabricMsg> for FabricMsg {
    fn wrap(inner: FabricMsg) -> Self {
        inner
    }
    fn peel(self) -> Result<FabricMsg, Self> {
        Ok(self)
    }
}

/// Configuration of a peer's FastFabric-style commit path: how many CPU
/// lanes the parallel VSCC phase may spread across, and which
/// verification caches are enabled. The default (one lane, no caches)
/// reproduces the legacy serial commit path byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitPipeline {
    /// CPU lanes available to the parallel VSCC phase (deployment clamps
    /// this to the device's core count).
    pub lanes: usize,
    /// Memoise successful endorsement-signature verifications across
    /// blocks.
    pub sig_cache: bool,
    /// Keep an endorser-side hot-state read cache, invalidated at commit
    /// for every written key.
    pub read_cache: bool,
}

impl Default for CommitPipeline {
    fn default() -> Self {
        CommitPipeline {
            lanes: 1,
            sig_cache: false,
            read_cache: false,
        }
    }
}

impl CommitPipeline {
    /// True when this configuration is exactly the legacy serial commit
    /// path (single lane, no caches).
    pub fn is_legacy(&self) -> bool {
        self.lanes <= 1 && !self.sig_cache && !self.read_cache
    }
}

/// Peer-side snapshot policy: cut a Merkle-rooted state snapshot every
/// `interval` blocks, optionally pruning the block store behind it.
/// Snapshots are off unless a policy is installed with
/// [`PeerActor::with_snapshots`], keeping default deployments byte for
/// byte identical to the pre-snapshot behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Cut a snapshot once the chain has grown this many blocks past the
    /// previous one.
    pub interval: u64,
    /// State entries per transfer chunk (the unit of the catch-up
    /// protocol's part fetches).
    pub chunk_entries: usize,
    /// Prune the block store behind each new snapshot's height.
    pub prune: bool,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy {
            interval: 64,
            chunk_entries: DEFAULT_CHUNK_ENTRIES,
            prune: true,
        }
    }
}

impl SnapshotPolicy {
    /// A policy cutting snapshots every `interval` blocks with default
    /// chunking and pruning enabled.
    pub fn every(interval: u64) -> Self {
        SnapshotPolicy {
            interval: interval.max(1),
            ..SnapshotPolicy::default()
        }
    }
}

/// Progress of an outstanding snapshot fetch (volatile; lost on crash).
enum FetchState {
    /// No fetch in progress.
    Idle,
    /// Waiting for a manifest from the provider at this ladder index.
    AwaitOffer { provider: usize },
    /// Downloading the parts of `manifest` from the provider at this
    /// ladder index.
    Parts {
        provider: usize,
        manifest: Box<SnapshotManifest>,
        parts: Vec<Option<SnapshotPart>>,
    },
}

/// First retry-timer token used by peers for catch-up retries (one token
/// per hosted channel: base + channel insertion index). Disjoint from the
/// harness's token space, which always sets its high token bit.
const CATCHUP_TIMER_BASE: u64 = 8;
/// Initial catch-up retry backoff in nanoseconds (200 ms; doubles per
/// attempt, capped at 32×).
const CATCHUP_RETRY_BASE_NS: u64 = 200_000_000;
/// Resends at the same height before a stalled block catch-up escalates
/// to a snapshot fetch (when providers are configured).
const CATCHUP_ESCALATE_AFTER: u32 = 3;
/// Retries without progress before a goal-only catch-up (nothing was
/// actually missed) stops re-requesting; gap-driven catch-up never gives
/// up, since a buffered future block proves progress is needed.
const CATCHUP_GIVE_UP: u32 = 8;
/// Cap on blocks served per peer-side deliver request.
const MAX_DELIVER_BLOCKS: u64 = 512;

/// Deterministic decorrelated backoff: exponential in `attempts` with up
/// to +50% jitter hashed from the peer's salt and the attempt number. The
/// peer's `ctx.rng()` stream deliberately stays untouched — the kernel
/// also draws this peer's network-jitter from it, so consuming it here
/// would perturb the timing of unrelated sends and break fixture
/// reproducibility; a hash gives the same per-peer decorrelation.
fn retry_delay(salt: u64, attempts: u32) -> SimDuration {
    let base = CATCHUP_RETRY_BASE_NS << attempts.min(5);
    let mut h = salt ^ (u64::from(attempts) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    SimDuration::from_nanos(base + h % (base / 2 + 1))
}

/// Pre-rendered per-channel metric names for the endorse and commit hot
/// paths: one `format!` per channel at join time instead of one per
/// event. By-name counter updates are allocation-free hash lookups, so
/// the rendered name is all the hot path needs.
struct HotMetricNames {
    endorsed: String,
    readcache_hits: String,
    readcache_misses: String,
    readcache_invalidations: String,
    blocks: String,
    tx_valid: String,
    tx_invalid: String,
}

impl HotMetricNames {
    fn new(channel: &ChannelId, prefix: &str) -> Self {
        HotMetricNames {
            endorsed: channel.metric_name(prefix, "endorsed"),
            readcache_hits: channel.metric_name(prefix, "readcache.hits"),
            readcache_misses: channel.metric_name(prefix, "readcache.misses"),
            readcache_invalidations: channel.metric_name(prefix, "readcache.invalidations"),
            blocks: channel.metric_name(prefix, "blocks"),
            tx_valid: channel.metric_name(prefix, "tx.valid"),
            tx_invalid: channel.metric_name(prefix, "tx.invalid"),
        }
    }
}

/// A peer's per-channel commit pipeline: the channel's committer plus the
/// volatile delivery bookkeeping (out-of-order buffer, catch-up marker,
/// snapshot fetch progress) and the durable latest snapshot.
struct PeerChannel {
    committer: Rc<RefCell<Committer>>,
    /// Pre-rendered metric names for per-event counters.
    names: HotMetricNames,
    /// Blocks that arrived ahead of the next expected height.
    block_buffer: BTreeMap<u64, Arc<Block>>,
    /// Height of an outstanding catch-up request, to avoid repeats.
    catchup_from: Option<u64>,
    /// Where to request missed blocks from after a crash restart
    /// (normally the channel's ordering node).
    catchup_target: Option<ActorId>,
    /// Hot-state read cache for endorsement, when the pipeline enables it.
    read_cache: Option<ReadCache>,
    /// Latest cut or fetched snapshot. Models durable checkpoint storage,
    /// so — like the block store — it survives crashes.
    latest_snapshot: Option<Arc<Snapshot>>,
    /// Peers that can serve snapshots and block re-delivery on this
    /// channel (the catch-up protocol's provider ladder).
    snapshot_providers: Vec<ActorId>,
    /// Outstanding snapshot fetch (volatile).
    fetch: FetchState,
    /// Pending catch-up retry timer (volatile).
    retry_timer: Option<TimerId>,
    /// Consecutive retries without progress; drives the backoff.
    retry_attempts: u32,
    /// Height recorded when a restart/join catch-up request went out;
    /// progress past it counts as success and disarms the retry timer.
    retry_goal: Option<u64>,
    /// This channel's retry-timer token.
    timer_token: u64,
}

impl PeerChannel {
    fn new(committer: Rc<RefCell<Committer>>, timer_token: u64, metric_prefix: &str) -> Self {
        let names = HotMetricNames::new(committer.borrow().channel(), metric_prefix);
        PeerChannel {
            committer,
            names,
            block_buffer: BTreeMap::new(),
            catchup_from: None,
            catchup_target: None,
            read_cache: None,
            latest_snapshot: None,
            snapshot_providers: Vec::new(),
            fetch: FetchState::Idle,
            retry_timer: None,
            retry_attempts: 0,
            retry_goal: None,
            timer_token,
        }
    }
}

/// A Fabric peer: endorses proposals and commits delivered blocks on
/// every channel it hosts (a map `ChannelId -> ledger`, any subset of the
/// network's channels).
pub struct PeerActor<M> {
    identity: SigningIdentity,
    registry: ChaincodeRegistry,
    channels: BTreeMap<ChannelId, PeerChannel>,
    costs: CostModel,
    /// Clients that receive [`FabricMsg::Commit`] notifications.
    subscribers: Vec<ActorId>,
    /// Targeted commit-event delivery: creator certificate -> client.
    /// Events whose creator is registered here go to that client alone;
    /// everything else falls back to the `subscribers` broadcast. Empty
    /// (the default) keeps the broadcast-only behaviour unchanged.
    targeted: HashMap<CertId, ActorId>,
    harness: ServiceHarness<M>,
    metric_prefix: String,
    /// Commit-path acceleration settings (lanes + caches).
    pipeline: CommitPipeline,
    /// Signature-verification memo, shared across this peer's channels.
    sig_cache: Option<SigVerifyCache>,
    /// Snapshot policy; `None` (the default) disables snapshots, pruning
    /// and snapshot-based recovery entirely.
    snapshots: Option<SnapshotPolicy>,
    /// Emit per-restart recovery gauges (off by default so existing
    /// metric exports stay unchanged).
    recovery_metrics: bool,
    /// Per-peer jitter salt for the catch-up retry backoff, derived from
    /// the metric prefix (stable across restarts).
    retry_salt: u64,
}

/// FNV-1a over the metric prefix: a stable, deterministic per-peer salt.
fn salt_of(prefix: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in prefix.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

impl<M: Carries<FabricMsg>> PeerActor<M> {
    /// Creates a peer hosting one channel (the committer's channel); add
    /// more with [`PeerActor::add_channel`].
    pub fn new(
        identity: SigningIdentity,
        registry: ChaincodeRegistry,
        committer: Rc<RefCell<Committer>>,
        costs: CostModel,
        metric_prefix: impl Into<String>,
    ) -> Self {
        let metric_prefix = metric_prefix.into();
        let channel = committer.borrow().channel().clone();
        let mut channels = BTreeMap::new();
        channels.insert(
            channel,
            PeerChannel::new(committer, CATCHUP_TIMER_BASE, &metric_prefix),
        );
        let retry_salt = salt_of(&metric_prefix);
        PeerActor {
            identity,
            registry,
            channels,
            costs,
            subscribers: Vec::new(),
            targeted: HashMap::new(),
            harness: ServiceHarness::new(metric_prefix.clone()),
            metric_prefix,
            pipeline: CommitPipeline::default(),
            sig_cache: None,
            snapshots: None,
            recovery_metrics: false,
            retry_salt,
        }
    }

    /// Joins the peer to another channel (keyed by the committer's
    /// channel), with an optional catch-up target for crash recovery.
    pub fn add_channel(&mut self, committer: Rc<RefCell<Committer>>, catchup: Option<ActorId>) {
        let channel = committer.borrow().channel().clone();
        let token = CATCHUP_TIMER_BASE + self.channels.len() as u64;
        let mut state = PeerChannel::new(committer, token, &self.metric_prefix);
        state.catchup_target = catchup;
        state.read_cache = self.pipeline.read_cache.then(ReadCache::new);
        self.channels.insert(channel, state);
    }

    /// Installs a snapshot policy: cut a Merkle-rooted snapshot every
    /// `policy.interval` blocks on every hosted channel, prune the block
    /// store behind it (when enabled), and recover from the latest
    /// snapshot plus a delta replay — instead of a full genesis replay —
    /// after a crash.
    #[must_use]
    pub fn with_snapshots(mut self, policy: SnapshotPolicy) -> Self {
        self.snapshots = Some(policy);
        self
    }

    /// Emits per-restart recovery gauges (`<prefix>.recovery.*`) so
    /// benchmarks can measure recovery cost; off by default to keep the
    /// default metric exports unchanged.
    #[must_use]
    pub fn with_recovery_metrics(mut self) -> Self {
        self.recovery_metrics = true;
        self
    }

    /// Registers the peers that can serve snapshots and block re-delivery
    /// for `channel` — the catch-up protocol's provider ladder, tried in
    /// order.
    pub fn set_snapshot_providers(&mut self, channel: &ChannelId, providers: Vec<ActorId>) {
        if let Some(state) = self.channels.get_mut(channel) {
            state.snapshot_providers = providers;
        }
    }

    /// Configures the commit-path acceleration (VSCC lanes + caches) for
    /// this peer, applying cache settings to every channel hosted so far
    /// and to channels added later.
    pub fn with_pipeline(mut self, pipeline: CommitPipeline) -> Self {
        self.pipeline = pipeline;
        self.sig_cache = pipeline.sig_cache.then(SigVerifyCache::new);
        for state in self.channels.values_mut() {
            state.read_cache = pipeline.read_cache.then(ReadCache::new);
        }
        self
    }

    /// Bounds this peer's admission queue (proposals only; block delivery
    /// always proceeds, since falling behind the ledger helps nobody).
    pub fn with_queue(mut self, config: QueueConfig) -> Self {
        self.harness.set_queue(config);
        self
    }

    /// Sets the node this peer asks to re-deliver blocks missed while
    /// crashed (normally the ordering service), on every channel hosted so
    /// far. Without a target the peer still recovers its ledger on restart
    /// but waits for the next live delivery to notice any gap.
    pub fn with_catchup_target(mut self, target: ActorId) -> Self {
        for state in self.channels.values_mut() {
            state.catchup_target = Some(target);
        }
        self
    }

    /// Subscribes a client to commit events.
    pub fn subscribe(&mut self, client: ActorId) {
        if !self.subscribers.contains(&client) {
            self.subscribers.push(client);
        }
    }

    /// Subscribes a client to commit events *of its own transactions
    /// only*, keyed by the enrolment id of the certificate it submits
    /// with. Models gateway-side event filtering: with ten thousand
    /// clients a per-event broadcast to every subscriber swamps both the
    /// modelled network and the host, so scale deployments register
    /// interest instead. Events from other creators (or from envelopes
    /// that failed to decode) still broadcast to plain subscribers.
    pub fn subscribe_targeted(&mut self, client: ActorId, interest: CertId) {
        self.targeted.insert(interest, client);
    }

    /// Shared handle to this peer's first channel's ledger (tests and
    /// audits; single-channel deployments have exactly one).
    pub fn committer(&self) -> Rc<RefCell<Committer>> {
        self.channels
            .values()
            .next()
            .expect("a peer always hosts at least one channel")
            .committer
            .clone()
    }

    /// Shared handle to one channel's ledger, if hosted.
    pub fn committer_for(&self, channel: &ChannelId) -> Option<Rc<RefCell<Committer>>> {
        self.channels.get(channel).map(|s| s.committer.clone())
    }

    /// The channels this peer hosts.
    pub fn hosted_channels(&self) -> Vec<ChannelId> {
        self.channels.keys().cloned().collect()
    }

    fn on_proposal(&mut self, ctx: &mut Context<'_, M>, src: ActorId, sp: SignedProposal) {
        let channel = sp.proposal.channel.clone();
        let Some(state) = self.channels.get_mut(&channel) else {
            // Not hosting this channel: reject like any endorsement error.
            self.reject_proposal(ctx, src, &sp, format!("channel {channel} not hosted"));
            return;
        };
        let committer = state.committer.borrow();
        let (response, stats) = endorse(
            &self.identity,
            &self.registry,
            committer.msp(),
            committer.state(),
            committer.history(),
            Some(committer.graph()),
            &sp,
        );
        drop(committer);
        let mut cost = self.costs.endorse_cost(&sp.proposal, &stats);
        // Hot-state read cache: reads served from cache cost a cache hit
        // instead of a full state operation. The chaincode still executed
        // against the authoritative state database above, so only the
        // charged CPU time changes, never the endorsement result.
        let mut hits = 0u64;
        let mut misses = 0u64;
        if let Some(cache) = state.read_cache.as_mut() {
            for read in &response.rwset.reads {
                if cache.touch(&read.key) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        if hits > 0 {
            cost = cost - (self.costs.state_op - self.costs.cache_hit_op) * hits;
            ctx.metrics().incr(&state.names.readcache_hits, hits);
        }
        if misses > 0 {
            ctx.metrics().incr(&state.names.readcache_misses, misses);
        }
        ctx.metrics().incr(&state.names.endorsed, 1);
        // Per-peer execution span: chaincode simulation + signing, closed
        // when the virtual CPU finishes and the response ships. The
        // response carries the tx id `endorse` already computed.
        let trace = tx_trace(&response.tx_id);
        ctx.span_start(&trace, "endorse.exec", &self.metric_prefix);
        let bytes = response.wire_size();
        let closes = vec![SpanClose::new(
            trace.clone(),
            "endorse.exec",
            self.metric_prefix.clone(),
        )];
        self.harness.defer_request(
            ctx,
            cost,
            &trace,
            vec![(src, bytes, M::wrap(FabricMsg::ProposalResult(response)))],
            closes,
        );
    }

    /// Sends an immediate rejection carrying `reason` (unhosted channel).
    fn reject_proposal(
        &mut self,
        ctx: &mut Context<'_, M>,
        src: ActorId,
        sp: &SignedProposal,
        reason: String,
    ) {
        let tx_id = sp.proposal.tx_id();
        let response = ProposalResponse {
            tx_id,
            endorser: self.identity.certificate().clone(),
            result: Err(reason),
            rwset: RwSet::new(),
            event: None,
            signature: self
                .identity
                .sign(&endorsement_message(&tx_id, &[], &RwSet::new())),
        };
        let bytes = response.wire_size();
        ctx.send(src, bytes, M::wrap(FabricMsg::ProposalResult(response)));
    }

    /// Sends an immediate rejection for a proposal shed at admission.
    fn nack_proposal(&mut self, ctx: &mut Context<'_, M>, src: ActorId, sp: &SignedProposal) {
        ctx.metrics()
            .incr(&format!("{}.nacked", self.metric_prefix), 1);
        self.reject_proposal(ctx, src, sp, BUSY_REASON.to_owned());
    }

    fn on_block(
        &mut self,
        ctx: &mut Context<'_, M>,
        src: ActorId,
        channel: ChannelId,
        block: Arc<Block>,
    ) {
        let Some(state) = self.channels.get(&channel) else {
            return; // not hosting this channel
        };
        let next = state.committer.borrow().height();
        if block.header.number < next {
            return; // duplicate delivery (multi-orderer dissemination)
        }
        self.channels
            .get_mut(&channel)
            .expect("checked above")
            .block_buffer
            .insert(block.header.number, block);
        // Commit every consecutive block now available.
        let committed = self.drain_ready(ctx, &channel);
        if committed > 0 {
            self.maybe_cut_snapshot(ctx, &channel);
        }
        // Gap detected (a future block is buffered but the next expected
        // one is missing): ask the sender to re-deliver — Fabric's deliver
        // service, which is how a peer catches up after a partition heals.
        let mut request = None;
        let mut arm = false;
        let mut disarm = false;
        {
            let state = self.channels.get_mut(&channel).expect("checked above");
            let height = state.committer.borrow().height();
            if state.retry_goal.is_some_and(|goal| height > goal) {
                state.retry_goal = None;
            }
            if !state.block_buffer.is_empty() {
                if state.catchup_from != Some(height) {
                    state.catchup_from = Some(height);
                    request = Some(FabricMsg::DeliverRequest {
                        channel: channel.clone(),
                        from: height,
                    });
                    // Arm a retry: the request itself can be lost (the
                    // repeat guard above would then stall catch-up until
                    // the next unrelated delivery).
                    arm = true;
                }
            } else {
                state.catchup_from = None;
                if matches!(state.fetch, FetchState::Idle) && state.retry_goal.is_none() {
                    disarm = true;
                }
            }
        }
        if let Some(msg) = request {
            ctx.metrics().incr(
                &channel.metric_name(&self.metric_prefix, "catchup_requests"),
                1,
            );
            let bytes = msg.wire_size();
            ctx.send(src, bytes, M::wrap(msg));
        }
        if arm {
            self.arm_retry(ctx, &channel);
        }
        if disarm {
            self.disarm_retry(ctx, &channel);
        }
    }

    /// Commits every consecutive buffered block; returns how many were
    /// committed.
    fn drain_ready(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId) -> u64 {
        let mut committed = 0;
        while let Some(state) = self.channels.get_mut(channel) {
            let height = state.committer.borrow().height();
            match state.block_buffer.remove(&height) {
                Some(block) => {
                    self.commit_one(ctx, channel, block);
                    committed += 1;
                }
                None => break,
            }
        }
        committed
    }

    /// Cuts a snapshot once the chain has grown `interval` blocks past the
    /// previous one (a no-op without a policy, so default deployments stay
    /// untouched). The capture cost is charged to the virtual CPU in
    /// proportion to the state size; pruning then drops the block store
    /// behind the new snapshot's height, bounding disk growth.
    fn maybe_cut_snapshot(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId) {
        let Some(policy) = self.snapshots else {
            return;
        };
        let Some(state) = self.channels.get_mut(channel) else {
            return;
        };
        let height = state.committer.borrow().height();
        let last = state
            .latest_snapshot
            .as_ref()
            .map_or(0, |s| s.manifest.height);
        if height < last.saturating_add(policy.interval.max(1)) {
            return;
        }
        let snapshot = state.committer.borrow().snapshot(policy.chunk_entries);
        let cost = self
            .costs
            .snapshot_capture_cost(snapshot.entry_count() as u64, snapshot.state_bytes());
        state.latest_snapshot = Some(Arc::new(snapshot));
        let pruned = if policy.prune {
            state.committer.borrow_mut().prune_store_to(height)
        } else {
            0
        };
        ctx.metrics().incr(
            &channel.metric_name(&self.metric_prefix, "snapshots.cut"),
            1,
        );
        ctx.metrics().set_gauge(
            &channel.metric_name(&self.metric_prefix, "snapshots.height"),
            height as f64,
        );
        if pruned > 0 {
            ctx.metrics().incr(
                &channel.metric_name(&self.metric_prefix, "snapshots.pruned_blocks"),
                pruned,
            );
        }
        self.harness.charge(ctx, cost);
    }

    /// (Re-)arms this channel's catch-up retry timer with exponential
    /// backoff (see [`retry_delay`]).
    fn arm_retry(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId) {
        let salt = self.retry_salt;
        let Some(state) = self.channels.get_mut(channel) else {
            return;
        };
        if let Some(timer) = state.retry_timer.take() {
            ctx.cancel_timer(timer);
        }
        let delay = retry_delay(salt, state.retry_attempts);
        state.retry_timer = Some(ctx.set_timer(delay, state.timer_token));
    }

    /// Cancels this channel's retry timer and clears the retry state.
    fn disarm_retry(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId) {
        let Some(state) = self.channels.get_mut(channel) else {
            return;
        };
        if let Some(timer) = state.retry_timer.take() {
            ctx.cancel_timer(timer);
        }
        state.retry_attempts = 0;
        state.retry_goal = None;
    }

    /// Handles an unclaimed timer token: one of the per-channel catch-up
    /// retry timers. Re-drives whatever is outstanding (block re-delivery
    /// or a snapshot fetch) with exponential backoff, escalating a stalled
    /// block catch-up to a snapshot fetch once providers are configured.
    /// This closes the liveness hole where a lost `DeliverRequest` left
    /// the repeat guard set forever.
    fn on_retry_timer(&mut self, ctx: &mut Context<'_, M>, token: u64) {
        let Some(channel) = self
            .channels
            .iter()
            .find(|(_, s)| s.timer_token == token)
            .map(|(c, _)| c.clone())
        else {
            return;
        };
        let (attempts, fetch_active) = {
            let state = self.channels.get_mut(&channel).expect("found above");
            state.retry_timer = None;
            let height = state.committer.borrow().height();
            let fetch_active = !matches!(state.fetch, FetchState::Idle);
            let goal_stuck = state.retry_goal.is_some_and(|goal| height <= goal);
            if !fetch_active && state.catchup_from.is_none() && !goal_stuck {
                // Progress happened since the timer was armed: done.
                state.retry_attempts = 0;
                state.retry_goal = None;
                return;
            }
            if !fetch_active
                && state.block_buffer.is_empty()
                && state.catchup_from.is_none()
                && state.retry_attempts >= CATCHUP_GIVE_UP
            {
                // Goal-only catch-up (nothing demonstrably missing) has
                // been retried enough: stop; a real gap re-arms it.
                state.retry_attempts = 0;
                state.retry_goal = None;
                return;
            }
            state.retry_attempts += 1;
            (state.retry_attempts, fetch_active)
        };
        ctx.metrics().incr(
            &channel.metric_name(&self.metric_prefix, "catchup_retries"),
            1,
        );
        if fetch_active {
            self.retry_fetch(ctx, &channel);
            return;
        }
        let escalate = {
            let state = self.channels.get(&channel).expect("found above");
            attempts > CATCHUP_ESCALATE_AFTER && !state.snapshot_providers.is_empty()
        };
        if escalate {
            self.begin_fetch(ctx, &channel, 0);
            return;
        }
        // Resend the deliver request to the catch-up target.
        let request = {
            let state = self.channels.get_mut(&channel).expect("found above");
            let height = state.committer.borrow().height();
            state.catchup_from = Some(height);
            if state.retry_goal.is_some() {
                state.retry_goal = Some(height);
            }
            state.catchup_target.map(|target| {
                (
                    target,
                    FabricMsg::DeliverRequest {
                        channel: channel.clone(),
                        from: height,
                    },
                )
            })
        };
        match request {
            Some((target, msg)) => {
                let bytes = msg.wire_size();
                ctx.send(target, bytes, M::wrap(msg));
                self.arm_retry(ctx, &channel);
            }
            // No target to retry against: stop; the next live delivery
            // will re-detect the gap and re-request from its sender.
            None => self.disarm_retry(ctx, &channel),
        }
    }

    /// Starts (or restarts) the snapshot catch-up protocol against the
    /// provider at ladder index `provider_idx`; past the end of the
    /// ladder, falls back to plain block re-delivery from the catch-up
    /// target.
    fn begin_fetch(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId, provider_idx: usize) {
        let step = {
            let Some(state) = self.channels.get_mut(channel) else {
                return;
            };
            match state.snapshot_providers.get(provider_idx).copied() {
                Some(provider) => {
                    state.fetch = FetchState::AwaitOffer {
                        provider: provider_idx,
                    };
                    Ok(provider)
                }
                None => {
                    state.fetch = FetchState::Idle;
                    let height = state.committer.borrow().height();
                    state.catchup_from = Some(height);
                    Err(state.catchup_target.map(|t| (t, height)))
                }
            }
        };
        match step {
            Ok(provider) => {
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "snapshot_fetches"),
                    1,
                );
                let msg = FabricMsg::SnapshotRequest {
                    channel: channel.clone(),
                };
                let bytes = msg.wire_size();
                ctx.send(provider, bytes, M::wrap(msg));
            }
            Err(fallback) => {
                // Ladder exhausted: fall back to block re-delivery (at
                // worst a replay from the orderer's retained tail).
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "catchup_fallbacks"),
                    1,
                );
                if let Some((target, height)) = fallback {
                    let msg = FabricMsg::DeliverRequest {
                        channel: channel.clone(),
                        from: height,
                    };
                    let bytes = msg.wire_size();
                    ctx.send(target, bytes, M::wrap(msg));
                }
            }
        }
        self.arm_retry(ctx, channel);
    }

    /// Re-drives a stalled snapshot fetch: an unanswered manifest request
    /// (or a part download stalled for too long) moves to the next
    /// provider; an ordinary part stall re-requests the first missing part
    /// from the same provider.
    fn retry_fetch(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId) {
        enum Step {
            Nothing,
            Advance(usize),
            Request(ActorId, u64, u32),
        }
        let step = {
            let Some(state) = self.channels.get_mut(channel) else {
                return;
            };
            let attempts = state.retry_attempts;
            match &state.fetch {
                FetchState::Idle => Step::Nothing,
                FetchState::AwaitOffer { provider } => Step::Advance(provider + 1),
                FetchState::Parts {
                    provider,
                    manifest,
                    parts,
                } => {
                    let next_missing = parts.iter().position(Option::is_none);
                    let provider_id = state.snapshot_providers.get(*provider).copied();
                    match (provider_id, next_missing) {
                        _ if attempts > 2 * CATCHUP_ESCALATE_AFTER => Step::Advance(provider + 1),
                        (Some(id), Some(index)) => Step::Request(id, manifest.height, index as u32),
                        _ => Step::Advance(provider + 1),
                    }
                }
            }
        };
        match step {
            Step::Nothing => {}
            Step::Advance(next) => self.begin_fetch(ctx, channel, next),
            Step::Request(provider, height, index) => {
                let msg = FabricMsg::SnapshotPartRequest {
                    channel: channel.clone(),
                    height,
                    index,
                };
                let bytes = msg.wire_size();
                ctx.send(provider, bytes, M::wrap(msg));
                self.arm_retry(ctx, channel);
            }
        }
    }

    /// Serves the catch-up protocol's opening request: reply with the
    /// latest snapshot's manifest, or `None` (sending the requester to its
    /// next provider).
    fn on_snapshot_request(&mut self, ctx: &mut Context<'_, M>, src: ActorId, channel: ChannelId) {
        let manifest = self
            .channels
            .get(&channel)
            .and_then(|s| s.latest_snapshot.as_ref())
            .map(|s| Box::new(s.manifest.clone()));
        ctx.metrics().incr(
            &channel.metric_name(&self.metric_prefix, "snapshot_requests"),
            1,
        );
        let msg = FabricMsg::SnapshotOffer { channel, manifest };
        let bytes = msg.wire_size();
        let cost = self.costs.cache_hit_op;
        self.harness
            .defer(ctx, cost, vec![(src, bytes, M::wrap(msg))], vec![]);
    }

    /// Handles a provider's manifest offer. Only a snapshot strictly ahead
    /// of the local chain helps; anything else advances the ladder, since
    /// block re-delivery is then the cheaper path.
    fn on_snapshot_offer(
        &mut self,
        ctx: &mut Context<'_, M>,
        src: ActorId,
        channel: ChannelId,
        manifest: Option<Box<SnapshotManifest>>,
    ) {
        let accepted = {
            let Some(state) = self.channels.get_mut(&channel) else {
                return;
            };
            let FetchState::AwaitOffer { provider } = &state.fetch else {
                return; // stale or duplicate offer
            };
            let provider = *provider;
            let height = state.committer.borrow().height();
            match manifest {
                Some(m) if m.height > height => {
                    let parts = vec![None; m.part_count()];
                    let snap_height = m.height;
                    state.fetch = FetchState::Parts {
                        provider,
                        manifest: m,
                        parts,
                    };
                    state.retry_attempts = 0;
                    Ok(snap_height)
                }
                _ => Err(provider + 1),
            }
        };
        match accepted {
            Ok(height) => {
                let msg = FabricMsg::SnapshotPartRequest {
                    channel: channel.clone(),
                    height,
                    index: 0,
                };
                let bytes = msg.wire_size();
                ctx.send(src, bytes, M::wrap(msg));
                self.arm_retry(ctx, &channel);
            }
            Err(next) => self.begin_fetch(ctx, &channel, next),
        }
    }

    /// Serves one snapshot part (state chunk or tail), charging transfer
    /// I/O; replies `None` when the requested snapshot is gone
    /// (superseded by a newer one), which advances the requester's ladder.
    fn on_part_request(
        &mut self,
        ctx: &mut Context<'_, M>,
        src: ActorId,
        channel: ChannelId,
        height: u64,
        index: u32,
    ) {
        let part = self
            .channels
            .get(&channel)
            .and_then(|s| s.latest_snapshot.as_ref())
            .filter(|s| s.manifest.height == height)
            .and_then(|s| s.part(index as usize))
            .map(Arc::new);
        let cost = part.as_ref().map_or(self.costs.cache_hit_op, |p| {
            self.costs.snapshot_transfer_cost(p.wire_size() as u64)
        });
        let msg = FabricMsg::SnapshotPartData {
            channel,
            height,
            index,
            part,
        };
        let bytes = msg.wire_size();
        self.harness
            .defer(ctx, cost, vec![(src, bytes, M::wrap(msg))], vec![]);
    }

    /// Ingests one fetched snapshot part: verify its digest against the
    /// manifest (corrupt transfers are re-requested), store it, and either
    /// request the next missing part or assemble and boot the snapshot.
    fn on_part_data(
        &mut self,
        ctx: &mut Context<'_, M>,
        src: ActorId,
        channel: ChannelId,
        height: u64,
        index: u32,
        part: Option<Arc<SnapshotPart>>,
    ) {
        enum Step {
            Ignore,
            ProviderGone(usize),
            Corrupt,
            RequestNext(u32, u64),
            Complete(u64),
        }
        let step = {
            let Some(state) = self.channels.get_mut(&channel) else {
                return;
            };
            let FetchState::Parts {
                provider,
                manifest,
                parts,
            } = &mut state.fetch
            else {
                return; // no fetch in progress (stale delivery)
            };
            if manifest.height != height {
                Step::Ignore
            } else {
                match part {
                    None => Step::ProviderGone(*provider + 1),
                    Some(part) => {
                        let idx = index as usize;
                        if idx >= parts.len() {
                            Step::Ignore
                        } else if part.digest() != manifest.part_digests[idx] {
                            Step::Corrupt
                        } else {
                            let bytes = part.wire_size() as u64;
                            if parts[idx].is_none() {
                                parts[idx] = Some(
                                    Arc::try_unwrap(part)
                                        .unwrap_or_else(|shared| (*shared).clone()),
                                );
                            }
                            match parts.iter().position(Option::is_none) {
                                Some(next) => Step::RequestNext(next as u32, bytes),
                                None => Step::Complete(bytes),
                            }
                        }
                    }
                }
            }
        };
        match step {
            Step::Ignore => {}
            Step::ProviderGone(next) => self.begin_fetch(ctx, &channel, next),
            Step::Corrupt => {
                // Transfer corruption: count it and re-request the part.
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "snapshot_corrupt_parts"),
                    1,
                );
                let msg = FabricMsg::SnapshotPartRequest {
                    channel: channel.clone(),
                    height,
                    index,
                };
                let bytes = msg.wire_size();
                ctx.send(src, bytes, M::wrap(msg));
                self.arm_retry(ctx, &channel);
            }
            Step::RequestNext(next, bytes) => {
                // Ingest cost: the digest check over the received bytes.
                self.harness
                    .charge(ctx, self.costs.snapshot_transfer_cost(bytes));
                let msg = FabricMsg::SnapshotPartRequest {
                    channel: channel.clone(),
                    height,
                    index: next,
                };
                let b = msg.wire_size();
                ctx.send(src, b, M::wrap(msg));
                self.arm_retry(ctx, &channel);
            }
            Step::Complete(bytes) => {
                self.harness
                    .charge(ctx, self.costs.snapshot_transfer_cost(bytes));
                self.finish_fetch(ctx, &channel);
            }
        }
    }

    /// All parts received: assemble, verify and bootstrap the committer
    /// from the fetched snapshot, then drain buffered live blocks and
    /// request the remaining delta from the catch-up target.
    fn finish_fetch(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId) {
        let (manifest, parts, provider) = {
            let Some(state) = self.channels.get_mut(channel) else {
                return;
            };
            match std::mem::replace(&mut state.fetch, FetchState::Idle) {
                FetchState::Parts {
                    provider,
                    manifest,
                    parts,
                } => (manifest, parts, provider),
                other => {
                    state.fetch = other;
                    return;
                }
            }
        };
        let snapshot = match Snapshot::assemble(*manifest, parts) {
            Ok(snapshot) => snapshot,
            Err(_) => {
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "snapshot_assemble_errors"),
                    1,
                );
                self.begin_fetch(ctx, channel, provider + 1);
                return;
            }
        };
        let rebuilt = {
            let Some(state) = self.channels.get(channel) else {
                return;
            };
            state.committer.borrow().recover_from_snapshot(&snapshot)
        };
        match rebuilt {
            Ok(rebuilt) => {
                let cost = self
                    .costs
                    .snapshot_restore_cost(snapshot.entry_count() as u64, snapshot.state_bytes());
                let snap_height = snapshot.manifest.height;
                {
                    let state = self.channels.get_mut(channel).expect("checked above");
                    *state.committer.borrow_mut() = rebuilt;
                    state.latest_snapshot = Some(Arc::new(snapshot));
                    state.retry_attempts = 0;
                }
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "snapshot_boots"),
                    1,
                );
                ctx.metrics().set_gauge(
                    &channel.metric_name(&self.metric_prefix, "snapshots.height"),
                    snap_height as f64,
                );
                self.harness.charge(ctx, cost);
                // Blocks that arrived live during the fetch may now be
                // directly above the snapshot: commit them.
                let committed = self.drain_ready(ctx, channel);
                if committed > 0 {
                    self.maybe_cut_snapshot(ctx, channel);
                }
                // Ask the catch-up target for the remaining delta.
                let request = {
                    let state = self.channels.get_mut(channel).expect("checked above");
                    let from = state.committer.borrow().height();
                    state.catchup_from = Some(from);
                    state.retry_goal = Some(from);
                    state.catchup_target.map(|target| {
                        (
                            target,
                            FabricMsg::DeliverRequest {
                                channel: channel.clone(),
                                from,
                            },
                        )
                    })
                };
                if let Some((target, msg)) = request {
                    ctx.metrics().incr(
                        &channel.metric_name(&self.metric_prefix, "catchup_requests"),
                        1,
                    );
                    let bytes = msg.wire_size();
                    ctx.send(target, bytes, M::wrap(msg));
                    self.arm_retry(ctx, channel);
                } else {
                    self.disarm_retry(ctx, channel);
                }
            }
            Err(_) => {
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "snapshot_boot_errors"),
                    1,
                );
                self.begin_fetch(ctx, channel, provider + 1);
            }
        }
    }

    /// Elastic membership: the deployment tells this (freshly added) peer
    /// to catch up on `channel` — via the snapshot protocol when a
    /// provider ladder is configured, else via block re-delivery from the
    /// catch-up target.
    fn on_join(&mut self, ctx: &mut Context<'_, M>, channel: ChannelId) {
        let Some(state) = self.channels.get(&channel) else {
            return;
        };
        let use_fetch = !state.snapshot_providers.is_empty();
        ctx.metrics()
            .incr(&channel.metric_name(&self.metric_prefix, "joins"), 1);
        if use_fetch {
            self.begin_fetch(ctx, &channel, 0);
            return;
        }
        let request = {
            let state = self.channels.get_mut(&channel).expect("checked above");
            let from = state.committer.borrow().height();
            state.catchup_from = Some(from);
            state.retry_goal = Some(from);
            state.catchup_target.map(|target| {
                (
                    target,
                    FabricMsg::DeliverRequest {
                        channel: channel.clone(),
                        from,
                    },
                )
            })
        };
        if let Some((target, msg)) = request {
            ctx.metrics().incr(
                &channel.metric_name(&self.metric_prefix, "catchup_requests"),
                1,
            );
            let bytes = msg.wire_size();
            ctx.send(target, bytes, M::wrap(msg));
        }
        self.arm_retry(ctx, &channel);
    }

    /// Serves the deliver (re-delivery) service from this peer's own block
    /// store, making peers usable as catch-up providers. Requests below
    /// the pruned horizon cannot be served contiguously (the snapshot
    /// protocol covers that range); requests at or above it ship up to
    /// [`MAX_DELIVER_BLOCKS`] blocks.
    fn on_deliver_request(
        &mut self,
        ctx: &mut Context<'_, M>,
        src: ActorId,
        channel: ChannelId,
        from: u64,
    ) {
        let Some(state) = self.channels.get(&channel) else {
            return;
        };
        ctx.metrics().incr(
            &channel.metric_name(&self.metric_prefix, "deliver_requests"),
            1,
        );
        let committer = state.committer.borrow();
        let store = committer.store();
        if from < store.base_height() {
            drop(committer);
            ctx.metrics().incr(
                &channel.metric_name(&self.metric_prefix, "deliver_pruned"),
                1,
            );
            return;
        }
        let to = store.height().min(from.saturating_add(MAX_DELIVER_BLOCKS));
        let mut sends = Vec::new();
        let mut cost = SimDuration::ZERO;
        for number in from..to {
            if let Some(block) = store.block(number) {
                let bytes = block.wire_size();
                cost += self.costs.snapshot_transfer_cost(bytes);
                sends.push((
                    src,
                    bytes,
                    M::wrap(FabricMsg::DeliverBlock(
                        channel.clone(),
                        Arc::new(block.clone()),
                    )),
                ));
            }
        }
        drop(committer);
        if !sends.is_empty() {
            self.harness.defer(ctx, cost, sends, vec![]);
        }
    }

    fn commit_one(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId, block: Arc<Block>) {
        if self.pipeline.is_legacy() {
            // Sole holder in the common case (the orderer's retained copy
            // has usually been evicted by now); clone only when shared.
            let block = Arc::try_unwrap(block).unwrap_or_else(|shared| (*shared).clone());
            self.commit_one_serial(ctx, channel, block);
        } else {
            self.commit_one_pipelined(ctx, channel, block);
        }
    }

    /// The accelerated commit path: the stateless VSCC phase is charged as
    /// the makespan of per-envelope costs spread across this peer's CPU
    /// lanes, then the serial MVCC + apply phase runs on one lane. Because
    /// the serial phase starts at the *global* CPU busy horizon while the
    /// next block's VSCC batch fills whichever lanes free up first, block
    /// N+1's VSCC naturally overlaps block N's apply.
    fn commit_one_pipelined(
        &mut self,
        ctx: &mut Context<'_, M>,
        channel: &ChannelId,
        block: Arc<Block>,
    ) {
        let trace = channel.trace_name(&format!("block-{}", block.header.number));
        ctx.span_start(&trace, "validate", &self.metric_prefix);
        let state = self.channels.get(channel).expect("caller checked");
        let verdicts = state
            .committer
            .borrow()
            .vscc_block(&block, self.sig_cache.as_mut());
        let mut vscc_costs = Vec::with_capacity(verdicts.len());
        let mut serial_cost = self.costs.block_cost(block.wire_size());
        let mut sig_hits = 0u64;
        let mut sig_misses = 0u64;
        for verdict in &verdicts {
            sig_hits += verdict.sig_hits as u64;
            sig_misses += verdict.sig_misses as u64;
            if let Some(env) = &verdict.envelope {
                vscc_costs.push(
                    self.costs
                        .vscc_cost(verdict.sig_misses as u64, verdict.sig_hits as u64),
                );
                serial_cost += self.costs.mvcc_cost()
                    + self.costs.apply_cost(
                        env.rwset.write_bytes() as u64,
                        env.rwset.writes.len() as u64,
                    );
            }
        }
        if self.sig_cache.is_some() {
            if sig_hits > 0 {
                ctx.metrics()
                    .incr(&format!("{}.sigcache.hits", self.metric_prefix), sig_hits);
            }
            if sig_misses > 0 {
                ctx.metrics().incr(
                    &format!("{}.sigcache.misses", self.metric_prefix),
                    sig_misses,
                );
            }
        }
        let owned = Arc::try_unwrap(block).unwrap_or_else(|shared| (*shared).clone());
        let outcome = state
            .committer
            .borrow_mut()
            .commit_block_prevalidated(owned, verdicts);
        match outcome {
            Ok(outcome) => {
                let names = &self.channels.get(channel).expect("caller checked").names;
                ctx.metrics().incr(&names.blocks, 1);
                ctx.metrics().incr(&names.tx_valid, outcome.valid as u64);
                ctx.metrics()
                    .incr(&names.tx_invalid, outcome.invalid as u64);
                // Goodput SLOs watch committed-transaction events.
                ctx.slo_event_n("commit.tx", outcome.valid as u64);
                self.note_dangling(ctx, channel, &trace, outcome.dangling_parents);
                // Every committed write invalidates its read-cache entry:
                // the cached version is no longer the latest.
                let mut invalidated = 0u64;
                let state = self.channels.get_mut(channel).expect("caller checked");
                if let Some(cache) = state.read_cache.as_mut() {
                    for key in &outcome.written_keys {
                        if cache.invalidate(key) {
                            invalidated += 1;
                        }
                    }
                }
                if invalidated > 0 {
                    ctx.metrics()
                        .incr(&state.names.readcache_invalidations, invalidated);
                }
                let detail = self.metric_prefix.clone();
                ctx.span_start(&trace, "commit.vscc", &detail);
                self.harness.defer_parallel(
                    ctx,
                    &vscc_costs,
                    vec![],
                    vec![SpanClose::new(trace.clone(), "commit.vscc", detail.clone())],
                );
                // The serial phase starts once every lane has drained the
                // VSCC batch (and any earlier block's apply has finished).
                let apply_start = ctx.now().max(ctx.cpu().busy_until());
                ctx.tracer()
                    .span_start(apply_start, &trace, "commit.apply", &detail);
                let sends = self.commit_event_sends(outcome.events);
                self.harness.defer(
                    ctx,
                    serial_cost,
                    sends,
                    vec![
                        SpanClose::new(trace.clone(), "commit.apply", detail.clone()),
                        SpanClose::new(trace, "validate", detail),
                    ],
                );
                let lanes_busy = ctx.cpu().lanes_busy_at(ctx.now()) as f64;
                ctx.metrics()
                    .set_gauge(&format!("{}.lanes_busy", self.metric_prefix), lanes_busy);
            }
            Err(err) => {
                ctx.span_end(&trace, "validate", &self.metric_prefix);
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "commit_errors"),
                    1,
                );
                let _ = err;
            }
        }
    }

    /// Builds the commit-notification sends for a block's events: one
    /// message straight to the registered client for targeted creators, a
    /// broadcast to every plain subscriber otherwise.
    fn commit_event_sends(&self, events: Vec<CommitEvent>) -> Vec<Outbound<M>> {
        let mut sends = Vec::new();
        for event in events {
            let target = event
                .creator
                .as_ref()
                .and_then(|creator| self.targeted.get(creator));
            if let Some(&client) = target {
                sends.push((client, 128, M::wrap(FabricMsg::Commit(event))));
                continue;
            }
            for &client in &self.subscribers {
                sends.push((client, 128, M::wrap(FabricMsg::Commit(event.clone()))));
            }
        }
        sends
    }

    /// Flags committed records whose parent ids are absent from the graph
    /// index: a warning event on the block trace plus a counter, emitted
    /// only when a block actually dangles (strict runs never do, so the
    /// default exports stay untouched).
    fn note_dangling(
        &mut self,
        ctx: &mut Context<'_, M>,
        channel: &ChannelId,
        trace: &str,
        dangling: u64,
    ) {
        if dangling == 0 {
            return;
        }
        ctx.metrics().incr(
            &channel.metric_name(&self.metric_prefix, "dangling_parent"),
            dangling,
        );
        let now = ctx.now();
        ctx.tracer()
            .event(now, trace, "dangling_parent", &self.metric_prefix);
    }

    fn commit_one_serial(&mut self, ctx: &mut Context<'_, M>, channel: &ChannelId, block: Block) {
        let mut cost = self.costs.block_cost(block.wire_size());
        for raw in &block.envelopes {
            if let Ok(env) = Envelope::from_raw(raw) {
                cost += self.costs.validate_cost(&env);
                cost += self.costs.apply_cost(
                    env.rwset.write_bytes() as u64,
                    env.rwset.writes.len() as u64,
                );
            }
        }
        // The validate span covers VSCC + MVCC + state apply for the whole
        // block on this peer; it closes once the modelled CPU finishes.
        let trace = channel.trace_name(&format!("block-{}", block.header.number));
        ctx.span_start(&trace, "validate", &self.metric_prefix);
        let state = self.channels.get(channel).expect("caller checked");
        let outcome = state.committer.borrow_mut().commit_block(block);
        match outcome {
            Ok(outcome) => {
                let prefix = &self.metric_prefix;
                ctx.metrics()
                    .incr(&channel.metric_name(prefix, "blocks"), 1);
                ctx.metrics().incr(
                    &channel.metric_name(prefix, "tx.valid"),
                    outcome.valid as u64,
                );
                ctx.metrics().incr(
                    &channel.metric_name(prefix, "tx.invalid"),
                    outcome.invalid as u64,
                );
                // Goodput SLOs watch committed-transaction events.
                ctx.slo_event_n("commit.tx", outcome.valid as u64);
                self.note_dangling(ctx, channel, &trace, outcome.dangling_parents);
                let sends = self.commit_event_sends(outcome.events);
                let detail = self.metric_prefix.clone();
                self.harness.defer(
                    ctx,
                    cost,
                    sends,
                    vec![SpanClose::new(trace, "validate", detail)],
                );
            }
            Err(err) => {
                ctx.span_end(&trace, "validate", &self.metric_prefix);
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "commit_errors"),
                    1,
                );
                let _ = err;
            }
        }
    }
}

impl<M: Carries<FabricMsg>> Actor<M> for PeerActor<M> {
    fn on_event(&mut self, ctx: &mut Context<'_, M>, event: Event<M>) {
        match event {
            Event::Message { src, msg } => match msg.peel() {
                Ok(FabricMsg::SubmitProposal(sp)) => {
                    let wrapped = M::wrap(FabricMsg::SubmitProposal(sp));
                    match self.harness.admit(ctx, src, wrapped) {
                        Admission::Admit(msg) => {
                            if let Ok(FabricMsg::SubmitProposal(sp)) = msg.peel() {
                                self.on_proposal(ctx, src, sp);
                            }
                        }
                        Admission::Nack(msg) => {
                            if let Ok(FabricMsg::SubmitProposal(sp)) = msg.peel() {
                                self.nack_proposal(ctx, src, &sp);
                            }
                        }
                        Admission::Done => {}
                    }
                }
                Ok(FabricMsg::DeliverBlock(channel, block)) => {
                    self.on_block(ctx, src, channel, block)
                }
                Ok(FabricMsg::DeliverRequest { channel, from }) => {
                    self.on_deliver_request(ctx, src, channel, from)
                }
                Ok(FabricMsg::SnapshotRequest { channel }) => {
                    self.on_snapshot_request(ctx, src, channel)
                }
                Ok(FabricMsg::SnapshotOffer { channel, manifest }) => {
                    self.on_snapshot_offer(ctx, src, channel, manifest)
                }
                Ok(FabricMsg::SnapshotPartRequest {
                    channel,
                    height,
                    index,
                }) => self.on_part_request(ctx, src, channel, height, index),
                Ok(FabricMsg::SnapshotPartData {
                    channel,
                    height,
                    index,
                    part,
                }) => self.on_part_data(ctx, src, channel, height, index, part),
                Ok(FabricMsg::JoinChannel { channel }) => self.on_join(ctx, channel),
                Ok(_) | Err(_) => {}
            },
            Event::Timer { token } => {
                if !self.harness.on_timer(ctx, token) {
                    self.on_retry_timer(ctx, token);
                }
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, M>) {
        // Volatile state is gone: buffered out-of-order blocks, the
        // outstanding catch-up markers, deferred jobs, admitted requests,
        // and the in-memory verification caches.
        self.harness.reset();
        self.sig_cache = self.pipeline.sig_cache.then(SigVerifyCache::new);
        let mut replay_cost = SimDuration::ZERO;
        let mut replayed_blocks = 0u64;
        let mut snapshot_boots = 0u64;
        let mut catchups = Vec::new();
        let read_cache_enabled = self.pipeline.read_cache;
        for (channel, state) in &mut self.channels {
            state.block_buffer.clear();
            state.catchup_from = None;
            state.read_cache = read_cache_enabled.then(ReadCache::new);
            // The crash also dropped every pending timer and any
            // half-finished snapshot fetch.
            state.fetch = FetchState::Idle;
            state.retry_timer = None;
            state.retry_attempts = 0;
            state.retry_goal = None;
            // Fast path: restore the latest durable snapshot and replay
            // only the delta blocks above it — work independent of total
            // chain length.
            let mut recovered = false;
            if let Some(snapshot) = state.latest_snapshot.clone() {
                // Bind before matching: the scrutinee's shared borrow
                // must end before the rebuilt ledger is swapped in.
                let booted = state.committer.borrow().recover_from_snapshot(&snapshot);
                match booted {
                    Ok(rebuilt) => {
                        replay_cost += self.costs.snapshot_restore_cost(
                            snapshot.entry_count() as u64,
                            snapshot.state_bytes(),
                        );
                        for block in rebuilt.store().iter() {
                            replay_cost += self.costs.block_cost(block.wire_size());
                            replayed_blocks += 1;
                        }
                        *state.committer.borrow_mut() = rebuilt;
                        ctx.metrics().incr(
                            &channel.metric_name(&self.metric_prefix, "snapshot_boots"),
                            1,
                        );
                        snapshot_boots += 1;
                        recovered = true;
                    }
                    Err(_) => {
                        ctx.metrics().incr(
                            &channel.metric_name(&self.metric_prefix, "snapshot_boot_errors"),
                            1,
                        );
                    }
                }
            }
            if !recovered {
                // Rebuild world state by re-validating the durable block
                // store; the replay keeps the virtual CPU busy, so
                // requests arriving during recovery queue behind it.
                let genesis = state.committer.borrow().recover();
                match genesis {
                    Ok(rebuilt) => {
                        for block in rebuilt.store().iter() {
                            replay_cost += self.costs.block_cost(block.wire_size());
                            replayed_blocks += 1;
                        }
                        *state.committer.borrow_mut() = rebuilt;
                    }
                    Err(_) => {
                        ctx.metrics().incr(
                            &channel.metric_name(&self.metric_prefix, "recover_errors"),
                            1,
                        );
                    }
                }
            }
            // Catch up on whatever the orderer cut while this peer was
            // down.
            if let Some(target) = state.catchup_target {
                let from = state.committer.borrow().height();
                ctx.metrics().incr(
                    &channel.metric_name(&self.metric_prefix, "catchup_requests"),
                    1,
                );
                state.retry_goal = Some(from);
                catchups.push((
                    target,
                    FabricMsg::DeliverRequest {
                        channel: channel.clone(),
                        from,
                    },
                ));
            }
        }
        if replay_cost > SimDuration::ZERO {
            self.harness.charge(ctx, replay_cost);
        }
        ctx.metrics()
            .incr(&format!("{}.recoveries", self.metric_prefix), 1);
        if self.recovery_metrics {
            ctx.metrics().set_gauge(
                &format!("{}.recovery.cost_ms", self.metric_prefix),
                replay_cost.as_nanos() as f64 / 1e6,
            );
            ctx.metrics().set_gauge(
                &format!("{}.recovery.replayed_blocks", self.metric_prefix),
                replayed_blocks as f64,
            );
            ctx.metrics().set_gauge(
                &format!("{}.recovery.snapshot_boots", self.metric_prefix),
                snapshot_boots as f64,
            );
        }
        for (target, msg) in catchups {
            let bytes = msg.wire_size();
            ctx.send(target, bytes, M::wrap(msg));
        }
        // Arm the catch-up retry: the request just sent may itself be lost
        // (e.g. restarting inside a partition), and without a timer the
        // repeat guard would stall catch-up until an unrelated delivery.
        let goals: Vec<ChannelId> = self
            .channels
            .iter()
            .filter(|(_, s)| s.retry_goal.is_some())
            .map(|(c, _)| c.clone())
            .collect();
        for channel in goals {
            self.arm_retry(ctx, &channel);
        }
    }
}

/// Timer token used by orderers for the batch timeout.
const BATCH_TIMER: u64 = 1;
/// Timer token used by raft orderers for consensus ticks.
const RAFT_TICK: u64 = 2;

/// A single-node ("solo") ordering service for one channel, as used by
/// the paper's setup. A multi-channel deployment runs one ordering
/// pipeline (solo or raft) per channel.
pub struct SoloOrdererActor<M> {
    channel: ChannelId,
    cutter: BlockCutter,
    assembler: BlockAssembler,
    peers: Vec<ActorId>,
    costs: CostModel,
    batch_timer: Option<TimerId>,
    /// Recently cut blocks, retained for the deliver (catch-up) service.
    retained: std::collections::VecDeque<Arc<Block>>,
    retain_limit: usize,
    harness: ServiceHarness<M>,
}

impl<M: Carries<FabricMsg>> SoloOrdererActor<M> {
    /// Creates a solo orderer for the default channel delivering blocks to
    /// `peers`.
    pub fn new(config: BatchConfig, peers: Vec<ActorId>, costs: CostModel) -> Self {
        SoloOrdererActor::for_channel(ChannelId::default(), config, peers, costs)
    }

    /// Creates a solo orderer for a named channel. Metrics and queue
    /// gauges are namespaced by channel unless it is the default one.
    pub fn for_channel(
        channel: ChannelId,
        config: BatchConfig,
        peers: Vec<ActorId>,
        costs: CostModel,
    ) -> Self {
        let harness_name = if channel.is_default() {
            "orderer".to_owned()
        } else {
            format!("orderer.{channel}")
        };
        SoloOrdererActor {
            channel,
            cutter: BlockCutter::new(config),
            assembler: BlockAssembler::new(),
            peers,
            costs,
            batch_timer: None,
            retained: std::collections::VecDeque::new(),
            retain_limit: 64,
            harness: ServiceHarness::new(harness_name),
        }
    }

    fn metric(&self, suffix: &str) -> String {
        self.channel.metric_name("orderer", suffix)
    }

    /// Bounds this orderer's admission queue (broadcasts only). A
    /// broadcast's queue slot frees when its transaction leaves the cutter
    /// in a cut batch. Under `Nack` the rejected broadcast is dropped with
    /// an `orderer.nacked` count — the broadcast path has no reply
    /// channel, so clients observe the loss as a commit timeout.
    pub fn with_queue(mut self, config: QueueConfig) -> Self {
        self.harness.set_queue(config);
        self
    }

    fn retain(&mut self, block: &Arc<Block>) {
        self.retained.push_back(Arc::clone(block));
        while self.retained.len() > self.retain_limit {
            self.retained.pop_front();
        }
    }

    fn deliver_batches(
        &mut self,
        ctx: &mut Context<'_, M>,
        batches: Vec<Vec<RawEnvelope>>,
        cost: SimDuration,
    ) {
        if batches.is_empty() {
            return;
        }
        let mut sends = Vec::new();
        let mut closes = Vec::new();
        for batch in batches {
            let block = Arc::new(self.assembler.assemble(batch));
            ctx.metrics().incr(&self.metric("blocks_cut"), 1);
            let trace = self
                .channel
                .trace_name(&format!("block-{}", block.header.number));
            for raw in &block.envelopes {
                // The tx has left the cutter's pending queue.
                ctx.span_end(&tx_trace(&raw.tx_id), "order.queue", "");
                self.harness.request_done(ctx);
            }
            ctx.trace_event(
                &trace,
                "block.cut",
                &format!("txs={}", block.envelopes.len()),
            );
            // Block assembly + dissemination, closed at CPU finish.
            ctx.span_start(&trace, "order.deliver", "");
            closes.push(SpanClose::new(trace, "order.deliver", String::new()));
            self.retain(&block);
            let bytes = block.wire_size();
            for &peer in &self.peers {
                sends.push((
                    peer,
                    bytes,
                    M::wrap(FabricMsg::DeliverBlock(
                        self.channel.clone(),
                        Arc::clone(&block),
                    )),
                ));
            }
        }
        self.harness.defer(ctx, cost, sends, closes);
    }

    fn on_broadcast(&mut self, ctx: &mut Context<'_, M>, env: Envelope) {
        let raw = env.to_raw();
        let cost = self.costs.order_cost(raw.bytes.len() as u64);
        ctx.metrics().incr(&self.metric("broadcasts"), 1);
        // Time the tx spends waiting for its batch to cut.
        ctx.span_start(&tx_trace(&raw.tx_id), "order.queue", "");
        let out = self.cutter.offer(raw);
        // Timer follows pending state: cancel (batch cut) or arm.
        if !out.batches.is_empty() {
            if let Some(t) = self.batch_timer.take() {
                ctx.cancel_timer(t);
            }
        }
        let needed = out.timer_needed;
        self.deliver_batches(ctx, out.batches, cost);
        self.rearm_timer(ctx, needed);
    }

    fn rearm_timer(&mut self, ctx: &mut Context<'_, M>, needed: bool) {
        match (needed, self.batch_timer) {
            (true, None) => {
                let timeout = self.cutter.config().timeout;
                self.batch_timer = Some(ctx.set_timer(timeout, BATCH_TIMER));
            }
            (false, Some(t)) => {
                ctx.cancel_timer(t);
                self.batch_timer = None;
            }
            _ => {}
        }
    }
}

impl<M: Carries<FabricMsg>> Actor<M> for SoloOrdererActor<M> {
    fn on_event(&mut self, ctx: &mut Context<'_, M>, event: Event<M>) {
        match event {
            Event::Message { src, msg } => match msg.peel() {
                Ok(FabricMsg::Broadcast(env)) => {
                    let wrapped = M::wrap(FabricMsg::Broadcast(env));
                    match self.harness.admit(ctx, src, wrapped) {
                        Admission::Admit(msg) => {
                            if let Ok(FabricMsg::Broadcast(env)) = msg.peel() {
                                self.on_broadcast(ctx, env);
                            }
                        }
                        Admission::Nack(_) => {
                            let name = self.metric("nacked");
                            ctx.metrics().incr(&name, 1);
                        }
                        Admission::Done => {}
                    }
                }
                Ok(FabricMsg::DeliverRequest { channel, from }) => {
                    if channel != self.channel {
                        return; // another channel's ordering service
                    }
                    let name = self.metric("deliver_requests");
                    ctx.metrics().incr(&name, 1);
                    for block in self.retained.iter() {
                        if block.header.number >= from {
                            let bytes = block.wire_size();
                            ctx.send(
                                src,
                                bytes,
                                M::wrap(FabricMsg::DeliverBlock(
                                    self.channel.clone(),
                                    block.clone(),
                                )),
                            );
                        }
                    }
                }
                Ok(FabricMsg::DeliverSubscribe { channel, peer }) => {
                    if channel != self.channel {
                        return; // another channel's ordering service
                    }
                    if !self.peers.contains(&peer) {
                        self.peers.push(peer);
                        let name = self.metric("subscriptions");
                        ctx.metrics().incr(&name, 1);
                    }
                }
                Ok(_) | Err(_) => {}
            },
            Event::Timer { token: BATCH_TIMER } => {
                self.batch_timer = None;
                if let Some(batch) = self.cutter.cut() {
                    let name = self.metric("timeout_cuts");
                    ctx.metrics().incr(&name, 1);
                    let cost = self.costs.block_base;
                    self.deliver_batches(ctx, vec![batch], cost);
                }
            }
            Event::Timer { token } => {
                let _ = self.harness.on_timer(ctx, token);
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, M>) {
        // The assembled chain (`assembler`, `retained`) models the
        // orderer's durable ledger and survives; transactions pending in
        // the cutter are volatile and are lost — their clients observe a
        // commit timeout and retry with fresh tx ids.
        let config = *self.cutter.config();
        self.cutter = BlockCutter::new(config);
        self.batch_timer = None;
        self.harness.reset();
        let name = self.metric("recoveries");
        ctx.metrics().incr(&name, 1);
    }
}

/// A Raft-replicated ordering node. Run one actor per cluster member; each
/// member that applies a committed batch delivers the resulting block to
/// all peers (peers deduplicate by height).
pub struct RaftOrdererActor<M> {
    channel: ChannelId,
    raft: RaftNode<Vec<RawEnvelope>>,
    /// This member's cluster index, used as span detail so the per-member
    /// `order.deliver` spans of one block do not collide.
    index: usize,
    cutter: BlockCutter,
    assembler: BlockAssembler,
    /// Actor ids of the raft cluster, indexed by raft peer index.
    cluster: Vec<ActorId>,
    peers: Vec<ActorId>,
    costs: CostModel,
    tick: SimDuration,
    batch_timer: Option<TimerId>,
    /// Recently applied blocks, retained for the deliver service.
    retained: std::collections::VecDeque<Arc<Block>>,
    retain_limit: usize,
    /// Transactions this member admitted (and opened `order.queue` spans
    /// for) that have not yet applied. Span closes and admission-slot
    /// releases follow this set, not current leadership: an entry
    /// admitted here may commit under a later leader, and gating on
    /// `is_leader()` at apply time would close the span at the wrong
    /// member (or twice) whenever leadership moved in between.
    admitted: std::collections::BTreeSet<TxId>,
    harness: ServiceHarness<M>,
}

impl<M: Carries<FabricMsg>> RaftOrdererActor<M> {
    /// Creates raft orderer `index` of `cluster.len()` members.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        cluster: Vec<ActorId>,
        peers: Vec<ActorId>,
        batch: BatchConfig,
        raft_config: RaftConfig,
        tick: SimDuration,
        seed: u64,
        costs: CostModel,
    ) -> Self {
        RaftOrdererActor {
            channel: ChannelId::default(),
            raft: RaftNode::new(index, cluster.len(), raft_config, seed),
            index,
            cutter: BlockCutter::new(batch),
            assembler: BlockAssembler::new(),
            cluster,
            peers,
            costs,
            tick,
            batch_timer: None,
            retained: std::collections::VecDeque::new(),
            retain_limit: 64,
            admitted: std::collections::BTreeSet::new(),
            harness: ServiceHarness::new(format!("orderer{index}")),
        }
    }

    /// Assigns this member to a named channel's ordering cluster (call
    /// before [`RaftOrdererActor::with_queue`]: it re-derives the queue's
    /// metric namespace). Metrics and queue gauges are namespaced by the
    /// channel unless it is the default one.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelId) -> Self {
        let harness_name = if channel.is_default() {
            format!("orderer{}", self.index)
        } else {
            format!("orderer{}.{channel}", self.index)
        };
        self.harness = ServiceHarness::new(harness_name);
        self.channel = channel;
        self
    }

    fn metric(&self, suffix: &str) -> String {
        self.channel.metric_name("orderer", suffix)
    }

    /// Bounds this member's admission queue (leader broadcasts only).
    /// Slots free when the admitted transaction applies on this member —
    /// even if it committed under a later leader. A slot is stranded
    /// only if its transaction is truly lost (dropped from every log by
    /// a leadership change before replication).
    pub fn with_queue(mut self, config: QueueConfig) -> Self {
        self.harness.set_queue(config);
        self
    }

    /// True if this member currently leads the cluster.
    pub fn is_leader(&self) -> bool {
        self.raft.is_leader()
    }

    fn ship(&mut self, ctx: &mut Context<'_, M>, out: crate::raft::RaftOutput<Vec<RawEnvelope>>) {
        for (dst, msg) in out.messages {
            let wrapped = FabricMsg::Raft(Box::new(msg));
            let bytes = wrapped.wire_size();
            ctx.send(self.cluster[dst], bytes, M::wrap(wrapped));
        }
        for (_, batch) in out.committed {
            let block = Arc::new(self.assembler.assemble(batch));
            let name = self.metric("blocks_cut");
            ctx.metrics().incr(&name, 1);
            let trace = self
                .channel
                .trace_name(&format!("block-{}", block.header.number));
            for raw in &block.envelopes {
                // Queue spans close at the member that admitted the tx
                // (see the `admitted` field), which also frees its
                // admission slot — even if leadership moved and the
                // entry committed under a different leader.
                if self.admitted.remove(&raw.tx_id) {
                    ctx.span_end(&tx_trace(&raw.tx_id), "order.queue", "");
                    self.harness.request_done(ctx);
                }
            }
            let detail = self.index.to_string();
            ctx.span_start(&trace, "order.deliver", &detail);
            self.retained.push_back(Arc::clone(&block));
            while self.retained.len() > self.retain_limit {
                self.retained.pop_front();
            }
            let bytes = block.wire_size();
            let mut sends = Vec::new();
            for &peer in &self.peers {
                sends.push((
                    peer,
                    bytes,
                    M::wrap(FabricMsg::DeliverBlock(
                        self.channel.clone(),
                        Arc::clone(&block),
                    )),
                ));
            }
            let cost = self.costs.block_cost(bytes);
            self.harness.defer(
                ctx,
                cost,
                sends,
                vec![SpanClose::new(trace, "order.deliver", detail)],
            );
        }
    }

    fn propose_batches(&mut self, ctx: &mut Context<'_, M>, batches: Vec<Vec<RawEnvelope>>) {
        for batch in batches {
            match self.raft.propose(batch) {
                Ok(out) => self.ship(ctx, out),
                Err(_) => {
                    let name = self.metric("dropped_not_leader");
                    ctx.metrics().incr(&name, 1)
                }
            }
        }
    }

    fn on_broadcast(&mut self, ctx: &mut Context<'_, M>, env: Envelope) {
        let raw = env.to_raw();
        let cost = self.costs.order_cost(raw.bytes.len() as u64);
        let name = self.metric("broadcasts");
        ctx.metrics().incr(&name, 1);
        ctx.span_start(&tx_trace(&raw.tx_id), "order.queue", "");
        self.admitted.insert(raw.tx_id);
        // Admission cost is charged but does not gate consensus messages
        // (they are network-bound).
        self.harness.charge(ctx, cost);
        let out = self.cutter.offer(raw);
        if !out.batches.is_empty() {
            if let Some(t) = self.batch_timer.take() {
                ctx.cancel_timer(t);
            }
        }
        let needed = out.timer_needed;
        self.propose_batches(ctx, out.batches);
        if needed && self.batch_timer.is_none() {
            let timeout = self.cutter.config().timeout;
            self.batch_timer = Some(ctx.set_timer(timeout, BATCH_TIMER));
        }
    }
}

impl<M: Carries<FabricMsg> + 'static> Actor<M> for RaftOrdererActor<M> {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_event(&mut self, ctx: &mut Context<'_, M>, event: Event<M>) {
        match event {
            Event::Message { src, msg } => match msg.peel() {
                Ok(FabricMsg::DeliverRequest { channel, from }) => {
                    if channel != self.channel {
                        return; // another channel's ordering service
                    }
                    let name = self.metric("deliver_requests");
                    ctx.metrics().incr(&name, 1);
                    for block in self.retained.iter() {
                        if block.header.number >= from {
                            let bytes = block.wire_size();
                            ctx.send(
                                src,
                                bytes,
                                M::wrap(FabricMsg::DeliverBlock(
                                    self.channel.clone(),
                                    block.clone(),
                                )),
                            );
                        }
                    }
                }
                Ok(FabricMsg::Broadcast(env)) => {
                    if self.raft.is_leader() {
                        let wrapped = M::wrap(FabricMsg::Broadcast(env));
                        match self.harness.admit(ctx, src, wrapped) {
                            Admission::Admit(msg) => {
                                if let Ok(FabricMsg::Broadcast(env)) = msg.peel() {
                                    self.on_broadcast(ctx, env);
                                }
                            }
                            Admission::Nack(_) => {
                                let name = self.metric("nacked");
                                ctx.metrics().incr(&name, 1);
                            }
                            Admission::Done => {}
                        }
                    } else if let Some(leader) = self.raft.leader_hint() {
                        // Redirect to the current leader.
                        let bytes = env.wire_size();
                        let dst = self.cluster[leader];
                        ctx.send(dst, bytes, M::wrap(FabricMsg::Broadcast(env)));
                        let name = self.metric("redirects");
                        ctx.metrics().incr(&name, 1);
                    } else {
                        let name = self.metric("dropped_no_leader");
                        ctx.metrics().incr(&name, 1);
                    }
                }
                Ok(FabricMsg::Raft(raft_msg)) => {
                    let out = self.raft.step(*raft_msg);
                    self.ship(ctx, out);
                }
                Ok(FabricMsg::DeliverSubscribe { channel, peer }) => {
                    if channel != self.channel {
                        return; // another channel's ordering service
                    }
                    if !self.peers.contains(&peer) {
                        self.peers.push(peer);
                        let name = self.metric("subscriptions");
                        ctx.metrics().incr(&name, 1);
                    }
                }
                Ok(_) | Err(_) => {}
            },
            Event::Timer { token: RAFT_TICK } => {
                let out = self.raft.tick();
                self.ship(ctx, out);
                let tick = self.tick;
                ctx.set_timer(tick, RAFT_TICK);
            }
            Event::Timer { token: BATCH_TIMER } => {
                self.batch_timer = None;
                if let Some(batch) = self.cutter.cut() {
                    let name = self.metric("timeout_cuts");
                    ctx.metrics().incr(&name, 1);
                    self.propose_batches(ctx, vec![batch]);
                }
            }
            Event::Timer { token } => {
                let _ = self.harness.on_timer(ctx, token);
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, M>) {
        // Raft term/vote/log model the persisted consensus state and
        // survive the crash; a restarted stale leader steps down as soon
        // as it hears a higher term. Cutter-pending transactions are
        // volatile and lost (clients retry); the consensus tick must be
        // re-armed because the crash dropped every pending timer.
        let config = *self.cutter.config();
        self.cutter = BlockCutter::new(config);
        self.batch_timer = None;
        // The admitted set pairs with the harness queue accounting, which
        // reset() just cleared; spans of pre-crash admissions stay open
        // in the tracer (reported as open, never as unmatched).
        self.admitted.clear();
        self.harness.reset();
        let name = self.metric("recoveries");
        ctx.metrics().incr(&name, 1);
        let tick = self.tick;
        ctx.set_timer(tick, RAFT_TICK);
    }
}

/// Kick-off token: schedule this timer on each raft orderer at start so it
/// begins ticking (use [`hyperprov_sim::Simulation::start_timer`] with
/// [`RAFT_TICK_TOKEN`]).
pub const RAFT_TICK_TOKEN: u64 = RAFT_TICK;
