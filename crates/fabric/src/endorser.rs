//! Endorsement: simulate a proposal against committed state and sign the
//! result.

use std::sync::Arc;

use hyperprov_ledger::{Digest, Encode, HistoryDb, ProvGraph, RwSet, StateDb, TxId};

use crate::chaincode::{ChaincodeRegistry, ChaincodeStub, StubStats};
use crate::identity::{Msp, SigningIdentity};
use crate::messages::{endorsement_message, ProposalResponse, SignedProposal};

/// Executes one signed proposal and produces the endorsement response plus
/// the resource stats the cost model needs.
///
/// Mirrors a Fabric endorsing peer's ESCC path: verify the client
/// signature, dispatch to the installed chaincode, capture the read/write
/// set, sign `(tx_id, payload, rwset)`.
///
/// `graph` is the channel's materialized provenance DAG index, exposed to
/// chaincode via [`ChaincodeStub::graph`] (pass `None` when the hosting
/// peer maintains no index).
pub fn endorse(
    identity: &SigningIdentity,
    registry: &ChaincodeRegistry,
    msp: &Arc<Msp>,
    state: &StateDb,
    history: &HistoryDb,
    graph: Option<&ProvGraph>,
    signed: &SignedProposal,
) -> (ProposalResponse, StubStats) {
    let proposal = &signed.proposal;
    // Encode once: the tx id is the digest of the canonical encoding and
    // the client signature covers the same bytes.
    let proposal_bytes = proposal.to_bytes();
    let tx_id = TxId(Digest::of(&proposal_bytes));

    let fail = |why: String| ProposalResponse {
        tx_id,
        endorser: identity.certificate().clone(),
        result: Err(why),
        rwset: RwSet::new(),
        event: None,
        signature: identity.sign(&endorsement_message(&tx_id, &[], &RwSet::new())),
    };

    // Authenticate the client.
    if !msp.verify(&proposal.creator, &proposal_bytes, &signed.signature) {
        return (
            fail("invalid client signature".to_owned()),
            StubStats::default(),
        );
    }

    // Dispatch to the chaincode.
    let chaincode = match registry.get(&proposal.chaincode) {
        Some(cc) => cc.clone(),
        None => {
            return (
                fail(format!("chaincode {:?} not installed", proposal.chaincode)),
                StubStats::default(),
            )
        }
    };

    let mut stub = ChaincodeStub::new(
        &proposal.chaincode,
        &proposal.function,
        &proposal.args,
        &proposal.creator,
        state,
        history,
    );
    if let Some(graph) = graph {
        stub = stub.with_graph(graph);
    }
    let result = chaincode.invoke(&mut stub);
    let (rwset, event, stats) = stub.into_results();

    let response = match result {
        Ok(payload) => {
            let signature = identity.sign(&endorsement_message(&tx_id, &payload, &rwset));
            ProposalResponse {
                tx_id,
                endorser: identity.certificate().clone(),
                result: Ok(payload),
                rwset,
                event: event.map(Into::into),
                signature,
            }
        }
        Err(err) => fail(err.to_string()),
    };
    (response, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::{Chaincode, ChaincodeError};
    use crate::identity::{MspBuilder, MspId, Signature};
    use crate::messages::Proposal;
    use hyperprov_ledger::Digest;

    struct Kv;
    impl Chaincode for Kv {
        fn name(&self) -> &str {
            "kv"
        }
        fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
            match stub.function() {
                "put" => {
                    let key = stub.arg_str(0)?.to_owned();
                    let value = stub.arg_bytes(1)?.to_vec();
                    stub.put_state(&key, value);
                    stub.set_event("put", key.into_bytes());
                    Ok(Vec::new())
                }
                "get" => {
                    let key = stub.arg_str(0)?.to_owned();
                    stub.get_state(&key).ok_or(ChaincodeError::NotFound(key))
                }
                other => Err(ChaincodeError::UnknownFunction(other.to_owned())),
            }
        }
    }

    struct Setup {
        msp: Arc<Msp>,
        client: SigningIdentity,
        peer: SigningIdentity,
        registry: ChaincodeRegistry,
        state: StateDb,
        history: HistoryDb,
    }

    use crate::identity::Msp;

    fn setup() -> Setup {
        let mut b = MspBuilder::new(1);
        let client = b.enroll("client", &MspId::new("org1"));
        let peer = b.enroll("peer0", &MspId::new("org1"));
        let mut registry = ChaincodeRegistry::new();
        registry.install(Arc::new(Kv));
        Setup {
            msp: b.build(),
            client,
            peer,
            registry,
            state: StateDb::new(),
            history: HistoryDb::new(),
        }
    }

    fn signed(
        client: &SigningIdentity,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> SignedProposal {
        let proposal = Proposal {
            channel: "ch".into(),
            chaincode: chaincode.into(),
            function: function.into(),
            args,
            creator: client.certificate().clone(),
            nonce: 9,
        };
        SignedProposal {
            signature: client.sign(&proposal.to_bytes()),
            proposal,
        }
    }

    #[test]
    fn successful_endorsement_is_signed_and_carries_rwset() {
        let s = setup();
        let sp = signed(&s.client, "kv", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        let (resp, stats) = endorse(
            &s.peer,
            &s.registry,
            &s.msp,
            &s.state,
            &s.history,
            None,
            &sp,
        );
        assert!(resp.is_success());
        assert_eq!(resp.rwset.writes.len(), 1);
        assert_eq!(resp.event.as_ref().unwrap().name, "put");
        assert_eq!(stats.writes, 1);
        // The signature verifies against the endorsement message.
        let msg = endorsement_message(&resp.tx_id, resp.result.as_ref().unwrap(), &resp.rwset);
        assert!(s.msp.verify(&resp.endorser, &msg, &resp.signature));
    }

    #[test]
    fn bad_client_signature_rejected() {
        let s = setup();
        let mut sp = signed(&s.client, "kv", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        sp.signature = Signature(Digest::of(b"forged"));
        let (resp, _) = endorse(
            &s.peer,
            &s.registry,
            &s.msp,
            &s.state,
            &s.history,
            None,
            &sp,
        );
        assert!(!resp.is_success());
        assert!(resp.result.unwrap_err().contains("signature"));
        assert!(resp.rwset.is_empty());
    }

    #[test]
    fn unknown_chaincode_rejected() {
        let s = setup();
        let sp = signed(&s.client, "ghost", "put", vec![]);
        let (resp, _) = endorse(
            &s.peer,
            &s.registry,
            &s.msp,
            &s.state,
            &s.history,
            None,
            &sp,
        );
        assert!(!resp.is_success());
        assert!(resp.result.unwrap_err().contains("not installed"));
    }

    #[test]
    fn chaincode_error_propagates_as_rejection() {
        let s = setup();
        let sp = signed(&s.client, "kv", "get", vec![b"missing".to_vec()]);
        let (resp, _) = endorse(
            &s.peer,
            &s.registry,
            &s.msp,
            &s.state,
            &s.history,
            None,
            &sp,
        );
        assert!(!resp.is_success());
        assert!(resp.result.unwrap_err().contains("not found"));
        // The read of the missing key is still recorded in stats.
        let sp2 = signed(&s.client, "kv", "nope", vec![]);
        let (resp2, _) = endorse(
            &s.peer,
            &s.registry,
            &s.msp,
            &s.state,
            &s.history,
            None,
            &sp2,
        );
        assert!(resp2.result.unwrap_err().contains("unknown function"));
    }

    #[test]
    fn two_endorsers_produce_identical_rwsets() {
        let mut b = MspBuilder::new(1);
        let client = b.enroll("client", &MspId::new("org1"));
        let peer1 = b.enroll("peer1", &MspId::new("org1"));
        let peer2 = b.enroll("peer2", &MspId::new("org2"));
        let msp = b.build();
        let mut registry = ChaincodeRegistry::new();
        registry.install(Arc::new(Kv));
        let state = StateDb::new();
        let history = HistoryDb::new();
        let sp = signed(&client, "kv", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        let (r1, _) = endorse(&peer1, &registry, &msp, &state, &history, None, &sp);
        let (r2, _) = endorse(&peer2, &registry, &msp, &state, &history, None, &sp);
        assert_eq!(r1.rwset, r2.rwset);
        assert_eq!(r1.result, r2.result);
        assert_ne!(r1.signature, r2.signature); // different keys
    }
}
