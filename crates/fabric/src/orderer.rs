//! The ordering service's batching logic (Fabric's "block cutter").
//!
//! Envelopes stream in from clients; the cutter groups them into batches
//! by message count, byte size and timeout — the three knobs
//! (`MaxMessageCount`, `PreferredMaxBytes`, `BatchTimeout`) that dominate
//! Fabric's latency/throughput trade-off and therefore the shape of the
//! paper's Figures 1 and 2.

use hyperprov_ledger::{Block, Digest, RawEnvelope};
use hyperprov_sim::SimDuration;

/// Batch formation parameters, mirroring Fabric's `BatchSize`/`BatchTimeout`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Cut a batch once it holds this many messages.
    pub max_message_count: usize,
    /// Prefer batches no larger than this many payload bytes.
    pub preferred_max_bytes: u64,
    /// Cut a non-empty pending batch after this long.
    pub timeout: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        // Fabric v1.4 sample defaults: 10 msgs / 512 KiB / 2 s.
        BatchConfig {
            max_message_count: 10,
            preferred_max_bytes: 512 * 1024,
            timeout: SimDuration::from_secs(2),
        }
    }
}

/// What the cutter wants the caller (the orderer node) to do after an
/// `offer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutterOutput {
    /// Batches that must be turned into blocks, in order.
    pub batches: Vec<Vec<RawEnvelope>>,
    /// True if a batch timer should now be running (pending non-empty).
    pub timer_needed: bool,
}

/// Groups incoming envelopes into batches.
#[derive(Debug, Default)]
pub struct BlockCutter {
    config: BatchConfig,
    pending: Vec<RawEnvelope>,
    pending_bytes: u64,
}

impl BlockCutter {
    /// Creates a cutter with the given configuration.
    pub fn new(config: BatchConfig) -> Self {
        BlockCutter {
            config,
            pending: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Number of envelopes waiting for a cut.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Offers one envelope; returns any batches that must be cut now and
    /// whether a batch timer should be running afterwards.
    pub fn offer(&mut self, env: RawEnvelope) -> CutterOutput {
        let size = env.bytes.len() as u64;
        let mut batches = Vec::new();

        // Oversized message: flush pending, then emit it alone.
        if size > self.config.preferred_max_bytes {
            if !self.pending.is_empty() {
                batches.push(self.take_pending());
            }
            batches.push(vec![env]);
            return CutterOutput {
                batches,
                timer_needed: false,
            };
        }

        // Would overflow the preferred size: cut pending first.
        if !self.pending.is_empty() && self.pending_bytes + size > self.config.preferred_max_bytes {
            batches.push(self.take_pending());
        }

        self.pending.push(env);
        self.pending_bytes += size;

        if self.pending.len() >= self.config.max_message_count {
            batches.push(self.take_pending());
        }

        CutterOutput {
            timer_needed: !self.pending.is_empty(),
            batches,
        }
    }

    /// Cuts whatever is pending (the batch-timeout path). Returns `None`
    /// if nothing is pending.
    pub fn cut(&mut self) -> Option<Vec<RawEnvelope>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.take_pending())
        }
    }

    fn take_pending(&mut self) -> Vec<RawEnvelope> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }
}

/// Tracks chain position and assembles batches into blocks.
#[derive(Debug)]
pub struct BlockAssembler {
    next_number: u64,
    prev_hash: Digest,
}

impl BlockAssembler {
    /// Starts a fresh chain (next block is genesis).
    pub fn new() -> Self {
        BlockAssembler {
            next_number: 0,
            prev_hash: Digest::ZERO,
        }
    }

    /// Builds the next block in the chain from a batch.
    pub fn assemble(&mut self, batch: Vec<RawEnvelope>) -> Block {
        let block = Block::build(self.next_number, self.prev_hash, batch);
        self.next_number += 1;
        self.prev_hash = block.header.hash();
        block
    }

    /// Number the next assembled block will carry.
    pub fn next_number(&self) -> u64 {
        self.next_number
    }
}

impl Default for BlockAssembler {
    fn default() -> Self {
        BlockAssembler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperprov_ledger::TxId;

    fn env(tag: u64, size: usize) -> RawEnvelope {
        RawEnvelope {
            tx_id: TxId(Digest::of(&tag.to_le_bytes())),
            bytes: vec![0u8; size],
        }
    }

    fn cutter(count: usize, bytes: u64) -> BlockCutter {
        BlockCutter::new(BatchConfig {
            max_message_count: count,
            preferred_max_bytes: bytes,
            timeout: SimDuration::from_secs(2),
        })
    }

    #[test]
    fn cuts_at_message_count() {
        let mut c = cutter(3, 1 << 20);
        assert!(c.offer(env(1, 10)).batches.is_empty());
        assert!(c.offer(env(2, 10)).batches.is_empty());
        let out = c.offer(env(3, 10));
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].len(), 3);
        assert!(!out.timer_needed);
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn timer_needed_while_pending() {
        let mut c = cutter(10, 1 << 20);
        let out = c.offer(env(1, 10));
        assert!(out.timer_needed);
        assert_eq!(c.pending_len(), 1);
        let batch = c.cut().unwrap();
        assert_eq!(batch.len(), 1);
        assert!(c.cut().is_none());
    }

    #[test]
    fn oversized_message_is_own_batch() {
        let mut c = cutter(10, 100);
        c.offer(env(1, 50));
        let out = c.offer(env(2, 500));
        assert_eq!(out.batches.len(), 2);
        assert_eq!(out.batches[0].len(), 1); // flushed pending
        assert_eq!(out.batches[1].len(), 1); // oversized alone
        assert!(!out.timer_needed);
    }

    #[test]
    fn preferred_bytes_overflow_cuts_pending_first() {
        let mut c = cutter(10, 100);
        c.offer(env(1, 60));
        let out = c.offer(env(2, 60));
        assert_eq!(out.batches.len(), 1);
        assert_eq!(out.batches[0].len(), 1);
        assert_eq!(c.pending_len(), 1); // second message now pending
        assert!(out.timer_needed);
    }

    #[test]
    fn count_one_cuts_every_message() {
        let mut c = cutter(1, 1 << 20);
        for i in 0..5 {
            let out = c.offer(env(i, 10));
            assert_eq!(out.batches.len(), 1);
            assert!(!out.timer_needed);
        }
    }

    #[test]
    fn assembler_chains_blocks() {
        let mut asm = BlockAssembler::new();
        let b0 = asm.assemble(vec![env(1, 10)]);
        let b1 = asm.assemble(vec![env(2, 10)]);
        let b2 = asm.assemble(vec![]);
        assert_eq!(b0.header.number, 0);
        assert_eq!(b0.header.prev_hash, Digest::ZERO);
        assert_eq!(b1.header.prev_hash, b0.header.hash());
        assert_eq!(b2.header.prev_hash, b1.header.hash());
        assert_eq!(asm.next_number(), 3);
    }

    #[test]
    fn default_config_matches_fabric_sample() {
        let c = BatchConfig::default();
        assert_eq!(c.max_message_count, 10);
        assert_eq!(c.preferred_max_bytes, 512 * 1024);
        assert_eq!(c.timeout, SimDuration::from_secs(2));
    }
}
