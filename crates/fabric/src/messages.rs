//! Wire messages of the execute-order-validate pipeline: proposals,
//! proposal responses, endorsements and transaction envelopes.
//!
//! All messages have a canonical encoding (hashing and signing operate on
//! those bytes), mirroring Fabric's protobuf envelopes.

use hyperprov_ledger::{
    decode_seq, encode_seq, ChannelId, CodecError, Decode, Decoder, Digest, Encode, Encoder,
    RawEnvelope, RwSet, TxId,
};

use crate::identity::{CertId, Certificate, Signature};

/// The span-trace key of a transaction: its full tx-id hex string.
///
/// Every pipeline stage derives the key the same way, so client-side and
/// server-side spans of one transaction share a trace (see the
/// "Observability" section of DESIGN.md for the span taxonomy).
pub fn tx_trace(tx_id: &TxId) -> String {
    tx_id.0.to_hex()
}

/// A client's request to execute a chaincode function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// Channel the transaction targets.
    pub channel: ChannelId,
    /// Target chaincode (namespace).
    pub chaincode: String,
    /// Function to invoke.
    pub function: String,
    /// Invocation arguments.
    pub args: Vec<Vec<u8>>,
    /// Submitting client's certificate.
    pub creator: Certificate,
    /// Client-chosen nonce making the tx id unique.
    pub nonce: u64,
}

impl Proposal {
    /// The transaction id: digest of the canonical proposal encoding.
    pub fn tx_id(&self) -> TxId {
        TxId(self.digest())
    }

    /// Approximate wire size in bytes (used by the network model).
    pub fn wire_size(&self) -> u64 {
        self.to_bytes().len() as u64
    }
}

impl Encode for Proposal {
    fn encode(&self, enc: &mut Encoder) {
        // Encoded as the bare name: byte-compatible with the pre-ChannelId
        // encoding, so tx ids are unchanged.
        enc.put_str(self.channel.as_str());
        enc.put_str(&self.chaincode);
        enc.put_str(&self.function);
        enc.put_varint(self.args.len() as u64);
        for a in &self.args {
            enc.put_bytes(a);
        }
        self.creator.encode(enc);
        enc.put_u64(self.nonce);
    }
}
impl Decode for Proposal {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let channel = ChannelId::from(dec.get_str()?);
        let chaincode = dec.get_str()?;
        let function = dec.get_str()?;
        let n = dec.get_varint()?;
        if n > dec.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: n,
                remaining: dec.remaining(),
            });
        }
        let mut args = Vec::with_capacity(n as usize);
        for _ in 0..n {
            args.push(dec.get_bytes()?);
        }
        Ok(Proposal {
            channel,
            chaincode,
            function,
            args,
            creator: Certificate::decode(dec)?,
            nonce: dec.get_u64()?,
        })
    }
}

/// A proposal plus the client's signature over it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedProposal {
    /// The proposal.
    pub proposal: Proposal,
    /// Client signature over the proposal's canonical encoding.
    pub signature: Signature,
}

impl Encode for SignedProposal {
    fn encode(&self, enc: &mut Encoder) {
        self.proposal.encode(enc);
        self.signature.encode(enc);
    }
}
impl Decode for SignedProposal {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SignedProposal {
            proposal: Proposal::decode(dec)?,
            signature: Signature::decode(dec)?,
        })
    }
}

/// A named event attached to a transaction by chaincode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaincodeEvent {
    /// Event name.
    pub name: String,
    /// Event payload.
    pub payload: Vec<u8>,
}

impl Encode for ChaincodeEvent {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_bytes(&self.payload);
    }
}
impl Decode for ChaincodeEvent {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ChaincodeEvent {
            name: dec.get_str()?,
            payload: dec.get_bytes()?,
        })
    }
}

impl From<(String, Vec<u8>)> for ChaincodeEvent {
    fn from((name, payload): (String, Vec<u8>)) -> Self {
        ChaincodeEvent { name, payload }
    }
}

/// The outcome an endorsing peer returns for a proposal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposalResponse {
    /// Transaction id of the endorsed proposal.
    pub tx_id: TxId,
    /// The endorsing peer's certificate.
    pub endorser: Certificate,
    /// Chaincode return value, or the rejection message.
    pub result: Result<Vec<u8>, String>,
    /// Read/write set produced by simulation (empty on rejection).
    pub rwset: RwSet,
    /// Chaincode event raised during simulation, if any.
    pub event: Option<ChaincodeEvent>,
    /// Endorser's signature over [`endorsement_message`].
    ///
    /// [`endorsement_message`]: endorsement_message
    pub signature: Signature,
}

impl ProposalResponse {
    /// True if the chaincode executed successfully.
    pub fn is_success(&self) -> bool {
        self.result.is_ok()
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        self.to_bytes().len() as u64
    }
}

impl Encode for ProposalResponse {
    fn encode(&self, enc: &mut Encoder) {
        self.tx_id.encode(enc);
        self.endorser.encode(enc);
        match &self.result {
            Ok(payload) => {
                enc.put_u8(1);
                enc.put_bytes(payload);
            }
            Err(msg) => {
                enc.put_u8(0);
                enc.put_str(msg);
            }
        }
        self.rwset.encode(enc);
        self.event.encode(enc);
        self.signature.encode(enc);
    }
}
impl Decode for ProposalResponse {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let tx_id = TxId::decode(dec)?;
        let endorser = Certificate::decode(dec)?;
        let result = match dec.get_u8()? {
            1 => Ok(dec.get_bytes()?),
            0 => Err(dec.get_str()?),
            _ => return Err(CodecError::Invalid("result tag not 0 or 1")),
        };
        Ok(ProposalResponse {
            tx_id,
            endorser,
            result,
            rwset: RwSet::decode(dec)?,
            event: Option::<ChaincodeEvent>::decode(dec)?,
            signature: Signature::decode(dec)?,
        })
    }
}

/// The bytes an endorser signs: binds tx id, response payload and rwset.
pub fn endorsement_message(tx_id: &TxId, payload: &[u8], rwset: &RwSet) -> Vec<u8> {
    let mut enc = Encoder::new();
    tx_id.encode(&mut enc);
    enc.put_bytes(payload);
    rwset.encode(&mut enc);
    enc.into_bytes()
}

/// One peer's endorsement attached to a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endorsement {
    /// The endorsing peer's certificate.
    pub endorser: Certificate,
    /// Signature over [`endorsement_message`].
    pub signature: Signature,
}

impl Encode for Endorsement {
    fn encode(&self, enc: &mut Encoder) {
        self.endorser.encode(enc);
        self.signature.encode(enc);
    }
}
impl Decode for Endorsement {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Endorsement {
            endorser: Certificate::decode(dec)?,
            signature: Signature::decode(dec)?,
        })
    }
}

/// A fully-assembled transaction submitted to ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The original proposal (committers re-check creator and target).
    pub proposal: Proposal,
    /// The agreed response payload.
    pub payload: Vec<u8>,
    /// The agreed read/write set.
    pub rwset: RwSet,
    /// Chaincode event raised during simulation, if any.
    pub event: Option<ChaincodeEvent>,
    /// Endorsements collected by the client.
    pub endorsements: Vec<Endorsement>,
}

impl Envelope {
    /// The transaction id (derived from the proposal).
    pub fn tx_id(&self) -> TxId {
        self.proposal.tx_id()
    }

    /// The message each endorsement must have signed.
    pub fn endorsement_message(&self) -> Vec<u8> {
        endorsement_message(&self.tx_id(), &self.payload, &self.rwset)
    }

    /// Serialises into the opaque [`RawEnvelope`] stored in blocks.
    pub fn to_raw(&self) -> RawEnvelope {
        RawEnvelope {
            tx_id: self.tx_id(),
            bytes: self.to_bytes(),
        }
    }

    /// Decodes an envelope back out of a block.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the raw bytes are malformed.
    pub fn from_raw(raw: &RawEnvelope) -> Result<Envelope, CodecError> {
        Envelope::from_bytes(&raw.bytes)
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        self.to_bytes().len() as u64
    }
}

impl Encode for Envelope {
    fn encode(&self, enc: &mut Encoder) {
        self.proposal.encode(enc);
        enc.put_bytes(&self.payload);
        self.rwset.encode(enc);
        self.event.encode(enc);
        encode_seq(&self.endorsements, enc);
    }
}
impl Decode for Envelope {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Envelope {
            proposal: Proposal::decode(dec)?,
            payload: dec.get_bytes()?,
            rwset: RwSet::decode(dec)?,
            event: Option::<ChaincodeEvent>::decode(dec)?,
            endorsements: decode_seq(dec)?,
        })
    }
}

/// A commit notification delivered to subscribed clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitEvent {
    /// Channel the transaction committed on.
    pub channel: ChannelId,
    /// The committed transaction.
    pub tx_id: TxId,
    /// Block that contains it.
    pub block_number: u64,
    /// Validation outcome.
    pub code: hyperprov_ledger::ValidationCode,
    /// Chaincode event attached by the contract, if any.
    pub chaincode_event: Option<ChaincodeEvent>,
    /// Enrolment id of the submitting client's certificate (`None` when
    /// the envelope did not decode). Peers running targeted commit-event
    /// delivery route the event to that client alone instead of
    /// broadcasting it to every subscriber.
    pub creator: Option<CertId>,
}

/// Digest of arbitrary payload bytes — convenience for checksum fields.
pub fn payload_checksum(data: &[u8]) -> Digest {
    Digest::of(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::{MspBuilder, MspId};
    use hyperprov_ledger::{KvWrite, StateKey};

    fn cert() -> Certificate {
        let mut b = MspBuilder::new(3);
        b.enroll("c", &MspId::new("org1")).certificate().clone()
    }

    fn proposal() -> Proposal {
        Proposal {
            channel: "ch1".into(),
            chaincode: "hyperprov".into(),
            function: "post".into(),
            args: vec![b"key".to_vec(), b"checksum".to_vec()],
            creator: cert(),
            nonce: 42,
        }
    }

    #[test]
    fn proposal_round_trip_and_txid_stability() {
        let p = proposal();
        let back = Proposal::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.tx_id(), p.tx_id());
        // Nonce changes the tx id.
        let mut p2 = p.clone();
        p2.nonce = 43;
        assert_ne!(p2.tx_id(), p.tx_id());
        assert!(p.wire_size() > 0);
    }

    #[test]
    fn signed_proposal_round_trip() {
        let mut b = MspBuilder::new(3);
        let id = b.enroll("c", &MspId::new("org1"));
        let msp = b.build();
        let p = Proposal {
            creator: id.certificate().clone(),
            ..proposal()
        };
        let sp = SignedProposal {
            signature: id.sign(&p.to_bytes()),
            proposal: p,
        };
        let back = SignedProposal::from_bytes(&sp.to_bytes()).unwrap();
        assert_eq!(back, sp);
        assert!(msp.verify(
            &back.proposal.creator,
            &back.proposal.to_bytes(),
            &back.signature
        ));
    }

    #[test]
    fn proposal_response_round_trips_both_variants() {
        let ok = ProposalResponse {
            tx_id: proposal().tx_id(),
            endorser: cert(),
            result: Ok(b"payload".to_vec()),
            rwset: RwSet::new(),
            event: Some(ChaincodeEvent {
                name: "posted".into(),
                payload: b"e".to_vec(),
            }),
            signature: Signature(Digest::of(b"sig")),
        };
        assert!(ok.is_success());
        assert_eq!(ProposalResponse::from_bytes(&ok.to_bytes()).unwrap(), ok);
        let err = ProposalResponse {
            result: Err("rejected: dup".to_owned()),
            ..ok
        };
        assert!(!err.is_success());
        assert_eq!(ProposalResponse::from_bytes(&err.to_bytes()).unwrap(), err);
    }

    #[test]
    fn envelope_round_trip_via_raw() {
        let rwset = RwSet {
            reads: vec![],
            writes: vec![KvWrite {
                key: StateKey::new("hyperprov", "item"),
                value: Some(b"record".to_vec()),
            }],
        };
        let env = Envelope {
            proposal: proposal(),
            payload: b"resp".to_vec(),
            rwset,
            event: None,
            endorsements: vec![Endorsement {
                endorser: cert(),
                signature: Signature(Digest::of(b"e")),
            }],
        };
        let raw = env.to_raw();
        assert_eq!(raw.tx_id, env.tx_id());
        let back = Envelope::from_raw(&raw).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn endorsement_message_binds_all_parts() {
        let tx = proposal().tx_id();
        let rw = RwSet::new();
        let base = endorsement_message(&tx, b"p", &rw);
        assert_ne!(base, endorsement_message(&tx, b"q", &rw));
        let rw2 = RwSet {
            reads: vec![],
            writes: vec![KvWrite {
                key: StateKey::new("cc", "k"),
                value: None,
            }],
        };
        assert_ne!(base, endorsement_message(&tx, b"p", &rw2));
    }

    #[test]
    fn malformed_envelope_rejected() {
        let raw = RawEnvelope {
            tx_id: proposal().tx_id(),
            bytes: vec![1, 2, 3],
        };
        assert!(Envelope::from_raw(&raw).is_err());
    }
}
