//! The committing peer's validation pipeline (VSCC + MVCC) and ledger
//! apply.
//!
//! For each block delivered by ordering, every transaction is checked in
//! order: envelope decoding, duplicate tx-id, endorsement signatures,
//! endorsement policy, and MVCC read-version validation. Valid
//! transactions apply their write sets immediately, so later transactions
//! in the same block validate against the updated state — exactly
//! Fabric's serial intra-block validation, which is what produces MVCC
//! conflicts under contention.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use hyperprov_ledger::{
    Block, BlockStore, ChainError, ChannelId, ChannelLedger, GraphIndexer, HistoryDb, KvWrite,
    ProvGraph, RawEnvelope, Snapshot, SnapshotError, StateDb, StateKey, TxId, ValidationCode,
    Version,
};

use crate::caches::SigVerifyCache;
use crate::identity::Msp;
use crate::messages::{endorsement_message, CommitEvent, Envelope};
use crate::policy::EndorsementPolicy;

/// Per-chaincode endorsement policies with a channel default.
#[derive(Debug, Clone)]
pub struct ChannelPolicies {
    default: EndorsementPolicy,
    per_chaincode: HashMap<String, EndorsementPolicy>,
}

impl ChannelPolicies {
    /// Creates a policy table with the given channel default.
    pub fn new(default: EndorsementPolicy) -> Self {
        ChannelPolicies {
            default,
            per_chaincode: HashMap::new(),
        }
    }

    /// Overrides the policy for one chaincode.
    pub fn set(&mut self, chaincode: &str, policy: EndorsementPolicy) {
        self.per_chaincode.insert(chaincode.to_owned(), policy);
    }

    /// The policy in effect for `chaincode`.
    pub fn policy_for(&self, chaincode: &str) -> &EndorsementPolicy {
        self.per_chaincode.get(chaincode).unwrap_or(&self.default)
    }
}

/// Summary of one block commit.
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// Per-transaction events in block order.
    pub events: Vec<CommitEvent>,
    /// Number of valid transactions.
    pub valid: u32,
    /// Number of invalidated transactions.
    pub invalid: u32,
    /// Total bytes applied to the state database.
    pub bytes_written: u64,
    /// Keys written by valid transactions, in apply order — what an
    /// endorser-side [`crate::ReadCache`] must invalidate after this
    /// block.
    pub written_keys: Vec<StateKey>,
    /// Parent references committed by this block that were absent from the
    /// provenance graph index at apply time — cross-shard links or broken
    /// references (always 0 without a [`GraphIndexer`] installed).
    pub dangling_parents: u64,
}

/// Outcome of the parallelisable VSCC phase for one envelope: the decoded
/// envelope, the VSCC failure code (if any), and how many endorsement
/// signatures ran cryptographically vs. were served from a
/// [`SigVerifyCache`]. The phase touches no world state, so verdicts for
/// the envelopes of one block are independent and can be computed on
/// separate CPU lanes.
#[derive(Debug, Clone)]
pub struct VsccVerdict {
    /// The decoded envelope, `None` when decoding failed.
    pub envelope: Option<Envelope>,
    /// The envelope's transaction id, recomputed from the decoded
    /// proposal exactly once per peer; the ledger phase reuses it rather
    /// than re-encoding the proposal (the raw wrapper's claimed id when
    /// decoding failed).
    pub tx_id: TxId,
    /// The VSCC-phase failure ([`ValidationCode::BadSignature`] or
    /// [`ValidationCode::EndorsementPolicyFailure`]), `None` when the
    /// envelope passed.
    pub failure: Option<ValidationCode>,
    /// Endorsement signatures verified cryptographically.
    pub sig_misses: u32,
    /// Endorsement signatures served from the verification cache.
    pub sig_hits: u32,
}

/// Why a snapshot could not be used to bootstrap a committer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootstrapError {
    /// The snapshot failed its own integrity check.
    Snapshot(SnapshotError),
    /// The snapshot belongs to a different channel.
    WrongChannel {
        /// Channel named by the snapshot manifest.
        got: String,
        /// Channel the committer serves.
        expected: String,
    },
    /// The provenance graph rebuilt from the restored state disagrees
    /// with the digest the manifest committed to.
    GraphDigestMismatch,
    /// A delta block did not extend the restored chain.
    Chain(ChainError),
}

impl fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootstrapError::Snapshot(e) => write!(f, "snapshot invalid: {e}"),
            BootstrapError::WrongChannel { got, expected } => {
                write!(f, "snapshot for channel {got}, expected {expected}")
            }
            BootstrapError::GraphDigestMismatch => {
                write!(f, "restored graph digest mismatch")
            }
            BootstrapError::Chain(e) => write!(f, "delta replay failed: {e}"),
        }
    }
}

impl std::error::Error for BootstrapError {}

impl From<SnapshotError> for BootstrapError {
    fn from(e: SnapshotError) -> Self {
        BootstrapError::Snapshot(e)
    }
}

impl From<ChainError> for BootstrapError {
    fn from(e: ChainError) -> Self {
        BootstrapError::Chain(e)
    }
}

/// A committing peer's view of one channel: the per-channel ledger bundle
/// ([`ChannelLedger`]: block store, world state, history) and the
/// validation machinery. A peer hosting several channels owns one
/// `Committer` per channel.
#[derive(Debug)]
pub struct Committer {
    channel: ChannelId,
    ledger: ChannelLedger,
    msp: Arc<Msp>,
    policies: ChannelPolicies,
    seen: HashSet<TxId>,
    /// Maps committed writes to provenance-graph updates; `None` leaves
    /// the graph index empty (legacy behaviour).
    indexer: Option<Arc<dyn GraphIndexer>>,
}

impl Committer {
    /// Creates a committer for the default channel.
    pub fn new(msp: Arc<Msp>, policies: ChannelPolicies) -> Self {
        Committer::for_channel(ChannelId::default(), msp, policies)
    }

    /// Creates a committer for a named channel.
    pub fn for_channel(channel: ChannelId, msp: Arc<Msp>, policies: ChannelPolicies) -> Self {
        Committer {
            channel,
            ledger: ChannelLedger::new(),
            msp,
            policies,
            seen: HashSet::new(),
            indexer: None,
        }
    }

    /// Installs the [`GraphIndexer`] that recognises provenance-record
    /// writes, enabling commit-time maintenance of the channel's
    /// materialized DAG index.
    #[must_use]
    pub fn with_indexer(mut self, indexer: Arc<dyn GraphIndexer>) -> Self {
        self.indexer = Some(indexer);
        self
    }

    /// Switches the channel's world state to the flat-sorted storage
    /// backend (see [`hyperprov_ledger::StateDb::flat`]) — faster point
    /// reads on large key counts. Call before any writes are applied.
    #[must_use]
    pub fn with_flat_state(mut self) -> Self {
        assert!(
            self.ledger.state.is_empty(),
            "switch the state backend before applying writes"
        );
        self.ledger.state = StateDb::flat();
        self
    }

    /// The channel this committer serves.
    pub fn channel(&self) -> &ChannelId {
        &self.channel
    }

    /// The channel's ledger bundle.
    pub fn ledger(&self) -> &ChannelLedger {
        &self.ledger
    }

    /// The committed block chain.
    pub fn store(&self) -> &BlockStore {
        &self.ledger.store
    }

    /// The current world state.
    pub fn state(&self) -> &StateDb {
        &self.ledger.state
    }

    /// The per-key history index.
    pub fn history(&self) -> &HistoryDb {
        &self.ledger.history
    }

    /// The channel's materialized provenance DAG index (empty unless a
    /// [`GraphIndexer`] was installed via [`Committer::with_indexer`]).
    pub fn graph(&self) -> &ProvGraph {
        &self.ledger.graph
    }

    /// Verifies the incrementally maintained graph index against the
    /// ledger: rebuilds a fresh index from a scan of the current world
    /// state and compares canonical digests. Trivially `true` when no
    /// indexer is installed.
    pub fn graph_consistent(&self) -> bool {
        let Some(indexer) = &self.indexer else {
            return true;
        };
        let mut fresh = ProvGraph::new();
        for (key, value) in self.ledger.state.iter() {
            if let Some(update) = indexer.index(key, Some(&value.value)) {
                fresh.apply(&update);
            }
        }
        fresh.digest() == self.ledger.graph.digest()
    }

    /// Feeds one valid transaction's writes through the installed indexer,
    /// updating the graph index; returns how many parent references were
    /// absent from the index at apply time.
    fn index_writes(&mut self, writes: &[KvWrite]) -> u64 {
        let Some(indexer) = &self.indexer else {
            return 0;
        };
        let mut dangling = 0;
        for write in writes {
            if let Some(update) = indexer.index(&write.key, write.value.as_deref()) {
                dangling += self.ledger.graph.apply(&update);
            }
        }
        dangling
    }

    /// The membership registry this committer validates against.
    pub fn msp(&self) -> &Arc<Msp> {
        &self.msp
    }

    /// Chain height.
    pub fn height(&self) -> u64 {
        self.ledger.store.height()
    }

    /// Validates and commits one block.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the block does not extend the chain
    /// (wrong number, broken link or bad data hash); the ledger is
    /// unchanged in that case.
    pub fn commit_block(&mut self, mut block: Block) -> Result<CommitOutcome, ChainError> {
        self.check_extends(&block)?;

        let mut events = Vec::with_capacity(block.envelopes.len());
        let mut codes = Vec::with_capacity(block.envelopes.len());
        let mut valid = 0u32;
        let mut invalid = 0u32;
        let mut bytes_written = 0u64;
        let mut written_keys = Vec::new();
        let mut dangling_parents = 0u64;

        for (tx_num, raw) in block.envelopes.iter().enumerate() {
            let (code, event, creator) = match Envelope::from_raw(raw) {
                Ok(env) => {
                    let tx_id = env.tx_id();
                    let creator = env.proposal.creator.id;
                    let code = self.validate(&env, &tx_id);
                    let mut chaincode_event = None;
                    if code.is_valid() {
                        let version = Version::new(block.header.number, tx_num as u32);
                        self.ledger.state.apply_writes(&env.rwset.writes, version);
                        self.ledger
                            .history
                            .append(tx_id, version, &env.rwset.writes);
                        dangling_parents += self.index_writes(&env.rwset.writes);
                        bytes_written += env.rwset.write_bytes() as u64;
                        // The decoded envelope is dropped here anyway, so
                        // move the written keys and event out instead of
                        // cloning them.
                        written_keys.extend(env.rwset.writes.into_iter().map(|w| w.key));
                        chaincode_event = env.event;
                    }
                    self.seen.insert(tx_id);
                    (code, chaincode_event, Some(creator))
                }
                Err(_) => (ValidationCode::BadSignature, None, None),
            };
            if code.is_valid() {
                valid += 1;
            } else {
                invalid += 1;
            }
            codes.push(code);
            events.push(CommitEvent {
                channel: self.channel.clone(),
                tx_id: raw.tx_id,
                block_number: block.header.number,
                code,
                chaincode_event: event,
                creator,
            });
        }

        block.metadata.codes = codes;
        self.append_committed(block);
        Ok(CommitOutcome {
            events,
            valid,
            invalid,
            bytes_written,
            written_keys,
            dangling_parents,
        })
    }

    /// The parallelisable half of validation: decode each envelope and run
    /// the stateless VSCC checks (endorsement signatures and endorsement
    /// policy). Touches neither world state nor the duplicate-tx-id set,
    /// so the verdicts for one block's envelopes are mutually independent
    /// — the simulation charges this phase as the makespan of the
    /// per-envelope costs spread across CPU lanes.
    ///
    /// Pass a [`SigVerifyCache`] to memoise successful signature checks
    /// across blocks; each verdict reports how many verifications hit the
    /// cache so callers can charge reduced CPU cost for hits.
    pub fn vscc_block(
        &self,
        block: &Block,
        mut cache: Option<&mut SigVerifyCache>,
    ) -> Vec<VsccVerdict> {
        block
            .envelopes
            .iter()
            .map(|raw| self.vscc_envelope(raw, cache.as_deref_mut()))
            .collect()
    }

    fn vscc_envelope(&self, raw: &RawEnvelope, cache: Option<&mut SigVerifyCache>) -> VsccVerdict {
        let env = match Envelope::from_raw(raw) {
            Ok(env) => env,
            Err(_) => {
                return VsccVerdict {
                    envelope: None,
                    tx_id: raw.tx_id,
                    failure: Some(ValidationCode::BadSignature),
                    sig_misses: 0,
                    sig_hits: 0,
                }
            }
        };
        let tx_id = env.tx_id();
        let msg = endorsement_message(&tx_id, &env.payload, &env.rwset);
        let mut orgs: Vec<&crate::identity::MspId> = Vec::new();
        let mut sig_misses = 0u32;
        let mut sig_hits = 0u32;
        let mut failure = None;
        let mut cache = cache;
        for e in &env.endorsements {
            let ok = match cache.as_deref_mut() {
                Some(c) => {
                    let (ok, hit) = c.verify(&self.msp, &e.endorser, &msg, &e.signature);
                    if hit {
                        sig_hits += 1;
                    } else {
                        sig_misses += 1;
                    }
                    ok
                }
                None => {
                    sig_misses += 1;
                    self.msp.verify(&e.endorser, &msg, &e.signature)
                }
            };
            if !ok {
                // Stop at the first bad signature, exactly like the serial
                // validator's early return.
                failure = Some(ValidationCode::BadSignature);
                break;
            }
            orgs.push(&e.endorser.org);
        }
        if failure.is_none() {
            let policy = self.policies.policy_for(&env.proposal.chaincode);
            if !policy.is_satisfied_by(orgs.iter().copied()) {
                failure = Some(ValidationCode::EndorsementPolicyFailure);
            }
        }
        VsccVerdict {
            envelope: Some(env),
            tx_id,
            failure,
            sig_misses,
            sig_hits,
        }
    }

    /// The serial half of the split commit path: duplicate-tx-id and MVCC
    /// read-version checks plus the state/history apply, consuming the
    /// [`VsccVerdict`]s produced by [`Committer::vscc_block`] for this
    /// block. Together the two halves decide exactly the same
    /// [`ValidationCode`] per transaction as [`Committer::commit_block`]:
    /// both check duplicates before signature/policy verdicts before MVCC,
    /// and signature and policy checks are pure, so evaluating them
    /// eagerly in the VSCC phase (even for transactions a serial validator
    /// would have rejected as duplicates first) cannot change any
    /// decision.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the block does not extend the chain;
    /// the ledger is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `vscc` does not hold exactly one verdict per envelope of
    /// `block` — verdicts from a different block are a logic error.
    pub fn commit_block_prevalidated(
        &mut self,
        mut block: Block,
        vscc: Vec<VsccVerdict>,
    ) -> Result<CommitOutcome, ChainError> {
        assert_eq!(
            vscc.len(),
            block.envelopes.len(),
            "one VSCC verdict per envelope"
        );
        self.check_extends(&block)?;

        let mut events = Vec::with_capacity(block.envelopes.len());
        let mut codes = Vec::with_capacity(block.envelopes.len());
        let mut valid = 0u32;
        let mut invalid = 0u32;
        let mut bytes_written = 0u64;
        let mut written_keys = Vec::new();
        let mut dangling_parents = 0u64;

        for (tx_num, (raw, verdict)) in block.envelopes.iter().zip(vscc).enumerate() {
            let (code, event, creator) = match verdict.envelope {
                Some(env) => {
                    let tx_id = verdict.tx_id;
                    let creator = env.proposal.creator.id;
                    let code = if self.seen.contains(&tx_id) {
                        ValidationCode::DuplicateTxId
                    } else if let Some(failure) = verdict.failure {
                        failure
                    } else if !self.ledger.state.validate_reads(&env.rwset.reads) {
                        ValidationCode::MvccReadConflict
                    } else {
                        ValidationCode::Valid
                    };
                    let mut chaincode_event = None;
                    if code.is_valid() {
                        let version = Version::new(block.header.number, tx_num as u32);
                        self.ledger.state.apply_writes(&env.rwset.writes, version);
                        self.ledger
                            .history
                            .append(tx_id, version, &env.rwset.writes);
                        dangling_parents += self.index_writes(&env.rwset.writes);
                        bytes_written += env.rwset.write_bytes() as u64;
                        // The verdict's envelope is consumed here, so move
                        // the written keys and event out instead of cloning.
                        written_keys.extend(env.rwset.writes.into_iter().map(|w| w.key));
                        chaincode_event = env.event;
                    }
                    self.seen.insert(tx_id);
                    (code, chaincode_event, Some(creator))
                }
                None => (ValidationCode::BadSignature, None, None),
            };
            if code.is_valid() {
                valid += 1;
            } else {
                invalid += 1;
            }
            codes.push(code);
            events.push(CommitEvent {
                channel: self.channel.clone(),
                tx_id: raw.tx_id,
                block_number: block.header.number,
                code,
                chaincode_event: event,
                creator,
            });
        }

        block.metadata.codes = codes;
        self.append_committed(block);
        Ok(CommitOutcome {
            events,
            valid,
            invalid,
            bytes_written,
            written_keys,
            dangling_parents,
        })
    }

    /// Structural checks: the block must extend the current chain. These
    /// would also be caught by `append`, but state must not be applied
    /// from a bad block, so they run before any per-transaction work.
    fn check_extends(&self, block: &Block) -> Result<(), ChainError> {
        if block.header.number != self.ledger.store.height() {
            return Err(ChainError::WrongNumber {
                got: block.header.number,
                expected: self.ledger.store.height(),
            });
        }
        if block.header.prev_hash != self.ledger.store.tip_hash() {
            return Err(ChainError::BrokenLink {
                at: block.header.number,
            });
        }
        if !block.verify_data_hash() {
            return Err(ChainError::BadDataHash {
                at: block.header.number,
            });
        }
        Ok(())
    }

    /// Appends a block whose state writes are already applied. A failure
    /// here cannot be reported as a recoverable `Err` — it would leave the
    /// world state ahead of the block store. [`Committer::check_extends`]
    /// tests exactly the conditions `append` re-checks, so this is
    /// unreachable unless that pairing breaks.
    fn append_committed(&mut self, block: Block) {
        self.ledger.store.append(block).unwrap_or_else(|err| {
            panic!(
                "invariant violated: block passed commit's structural \
                 pre-checks (number/prev_hash/data_hash) but BlockStore::append \
                 rejected it: {err:?}"
            )
        });
    }

    /// Rebuilds a peer's entire ledger by re-validating a persisted chain
    /// block by block — peer restart/recovery. Every signature, policy and
    /// MVCC decision is recomputed, so the rebuilt state cannot silently
    /// diverge from what honest validation would have produced.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the chain does not link correctly.
    pub fn replay(
        msp: Arc<Msp>,
        policies: ChannelPolicies,
        blocks: impl IntoIterator<Item = Block>,
    ) -> Result<Committer, ChainError> {
        Committer::replay_channel(ChannelId::default(), msp, policies, blocks)
    }

    /// [`Committer::replay`] for a named channel.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the chain does not link correctly.
    pub fn replay_channel(
        channel: ChannelId,
        msp: Arc<Msp>,
        policies: ChannelPolicies,
        blocks: impl IntoIterator<Item = Block>,
    ) -> Result<Committer, ChainError> {
        Committer::replay_channel_indexed(channel, msp, policies, None, blocks)
    }

    /// [`Committer::replay_channel`] with a [`GraphIndexer`] installed, so
    /// the replay also rebuilds the materialized provenance DAG index.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the chain does not link correctly.
    pub fn replay_channel_indexed(
        channel: ChannelId,
        msp: Arc<Msp>,
        policies: ChannelPolicies,
        indexer: Option<Arc<dyn GraphIndexer>>,
        blocks: impl IntoIterator<Item = Block>,
    ) -> Result<Committer, ChainError> {
        let mut committer = Committer::for_channel(channel, msp, policies);
        committer.indexer = indexer;
        for mut block in blocks {
            // Drop the recorded validation codes; they are recomputed.
            block.metadata.codes.clear();
            committer.commit_block(block)?;
        }
        Ok(committer)
    }

    /// Rebuilds this committer from its own persisted chain — the crash
    /// recovery path. Equivalent to [`Committer::replay`] over
    /// [`Committer::store`]: volatile state (world state, history, seen
    /// set) is reconstructed from the durable block store.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the stored chain does not link
    /// correctly (which would indicate durable-storage corruption).
    pub fn recover(&self) -> Result<Committer, ChainError> {
        Committer::replay_channel_indexed(
            self.channel.clone(),
            self.msp.clone(),
            self.policies.clone(),
            self.indexer.clone(),
            self.ledger.store.iter().cloned(),
        )
    }

    /// Freezes this committer's entire derived state at the current
    /// height into a Merkle-rooted [`Snapshot`] with at most
    /// `chunk_entries` state entries per transfer chunk.
    pub fn snapshot(&self, chunk_entries: usize) -> Snapshot {
        Snapshot::capture(
            &self.channel,
            self.ledger.store.height(),
            self.ledger.store.tip_hash(),
            &self.ledger.state,
            &self.ledger.history,
            self.seen.iter().copied().collect(),
            self.ledger.graph.digest(),
            chunk_entries,
        )
    }

    /// Compacts the block store behind a snapshot horizon; blocks below
    /// `horizon` are dropped. Returns the number of blocks pruned.
    pub fn prune_store_to(&mut self, horizon: u64) -> u64 {
        self.ledger.store.prune_to(horizon)
    }

    /// Rebuilds a committer from a verified snapshot plus delta blocks —
    /// the O(1)-in-chain-length recovery path. The snapshot is integrity
    /// checked ([`Snapshot::verify`]), the provenance graph is rebuilt by
    /// running the indexer over the restored state and compared against
    /// the manifest's graph digest, and the block store resumes pruned at
    /// the snapshot height. Delta blocks below the snapshot height are
    /// skipped; the rest are re-validated exactly like a genesis replay.
    ///
    /// # Errors
    ///
    /// Returns a [`BootstrapError`] if the snapshot fails verification,
    /// names another channel, the rebuilt graph digest disagrees, or a
    /// delta block does not link.
    pub fn bootstrap_from_snapshot(
        channel: ChannelId,
        msp: Arc<Msp>,
        policies: ChannelPolicies,
        indexer: Option<Arc<dyn GraphIndexer>>,
        snapshot: &Snapshot,
        delta_blocks: impl IntoIterator<Item = Block>,
    ) -> Result<Committer, BootstrapError> {
        snapshot.verify()?;
        if snapshot.manifest.channel != channel.as_str() {
            return Err(BootstrapError::WrongChannel {
                got: snapshot.manifest.channel.clone(),
                expected: channel.as_str().to_owned(),
            });
        }

        let state = snapshot.restore_state();
        let mut graph = ProvGraph::new();
        if let Some(indexer) = &indexer {
            for (key, value) in state.iter() {
                if let Some(update) = indexer.index(key, Some(&value.value)) {
                    graph.apply(&update);
                }
            }
        }
        if graph.digest() != snapshot.manifest.graph_digest {
            return Err(BootstrapError::GraphDigestMismatch);
        }

        let mut committer = Committer {
            channel,
            ledger: ChannelLedger {
                store: BlockStore::with_base(snapshot.manifest.height, snapshot.manifest.tip_hash),
                state,
                history: snapshot.restore_history(),
                graph,
            },
            msp,
            policies,
            seen: snapshot.tail.seen.iter().copied().collect(),
            indexer,
        };
        for mut block in delta_blocks {
            if block.header.number < snapshot.manifest.height {
                continue;
            }
            block.metadata.codes.clear();
            committer.commit_block(block)?;
        }
        Ok(committer)
    }

    /// [`Committer::bootstrap_from_snapshot`] against this committer's own
    /// identity material and durable block store: restores the snapshot
    /// and replays only the blocks at or above its height. This is the
    /// restarted peer's fast path — `recover()` replays the whole chain,
    /// this replays at most one snapshot interval.
    ///
    /// # Errors
    ///
    /// Returns a [`BootstrapError`] if the snapshot fails verification or
    /// the delta blocks do not link onto it.
    pub fn recover_from_snapshot(&self, snapshot: &Snapshot) -> Result<Committer, BootstrapError> {
        Committer::bootstrap_from_snapshot(
            self.channel.clone(),
            self.msp.clone(),
            self.policies.clone(),
            self.indexer.clone(),
            snapshot,
            self.ledger
                .store
                .iter()
                .filter(|b| b.header.number >= snapshot.manifest.height)
                .cloned(),
        )
    }

    fn validate(&self, env: &Envelope, tx_id: &TxId) -> ValidationCode {
        if self.seen.contains(tx_id) {
            return ValidationCode::DuplicateTxId;
        }
        // Verify every endorsement signature over the agreed message.
        let msg = endorsement_message(tx_id, &env.payload, &env.rwset);
        let mut orgs: Vec<&crate::identity::MspId> = Vec::new();
        for e in &env.endorsements {
            if !self.msp.verify(&e.endorser, &msg, &e.signature) {
                return ValidationCode::BadSignature;
            }
            orgs.push(&e.endorser.org);
        }
        let policy = self.policies.policy_for(&env.proposal.chaincode);
        if !policy.is_satisfied_by(orgs.iter().copied()) {
            return ValidationCode::EndorsementPolicyFailure;
        }
        if !self.ledger.state.validate_reads(&env.rwset.reads) {
            return ValidationCode::MvccReadConflict;
        }
        ValidationCode::Valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::{MspBuilder, MspId, Signature, SigningIdentity};
    use crate::messages::{endorsement_message, Endorsement, Proposal};
    use hyperprov_ledger::{Digest, KvRead, KvWrite, RwSet, StateKey};

    struct Net {
        msp: Arc<Msp>,
        client: SigningIdentity,
        peers: Vec<SigningIdentity>,
    }

    fn net() -> Net {
        let mut b = MspBuilder::new(1);
        let client = b.enroll("client", &MspId::new("org1"));
        let peers = (0..3)
            .map(|i| b.enroll(&format!("peer{i}"), &MspId::new(format!("org{}", i + 1))))
            .collect();
        Net {
            msp: b.build(),
            client,
            peers,
        }
    }

    fn committer(net: &Net, policy: EndorsementPolicy) -> Committer {
        Committer::new(net.msp.clone(), ChannelPolicies::new(policy))
    }

    fn envelope(net: &Net, nonce: u64, rwset: RwSet, endorsers: &[usize]) -> Envelope {
        let proposal = Proposal {
            channel: "ch".into(),
            chaincode: "cc".into(),
            function: "f".into(),
            args: vec![],
            creator: net.client.certificate().clone(),
            nonce,
        };
        let tx_id = proposal.tx_id();
        let msg = endorsement_message(&tx_id, b"r", &rwset);
        let endorsements = endorsers
            .iter()
            .map(|&i| Endorsement {
                endorser: net.peers[i].certificate().clone(),
                signature: net.peers[i].sign(&msg),
            })
            .collect();
        Envelope {
            proposal,
            payload: b"r".to_vec(),
            rwset,
            event: None,
            endorsements,
        }
    }

    fn write_set(key: &str, value: &[u8]) -> RwSet {
        RwSet {
            reads: vec![],
            writes: vec![KvWrite {
                key: StateKey::new("cc", key),
                value: Some(value.to_vec()),
            }],
        }
    }

    fn block_of(c: &Committer, envs: Vec<Envelope>) -> Block {
        Block::build(
            c.height(),
            c.store().tip_hash(),
            envs.iter().map(Envelope::to_raw).collect(),
        )
    }

    #[test]
    fn valid_tx_commits_and_updates_state() {
        let n = net();
        let mut c = committer(&n, EndorsementPolicy::any_of([MspId::new("org1")]));
        let env = envelope(&n, 1, write_set("k", b"v"), &[0]);
        let out = c.commit_block(block_of(&c, vec![env])).unwrap();
        assert_eq!(out.valid, 1);
        assert_eq!(out.invalid, 0);
        assert_eq!(out.events[0].code, ValidationCode::Valid);
        assert_eq!(
            c.state().get(&StateKey::new("cc", "k")).unwrap().value,
            b"v"
        );
        assert_eq!(c.history().history(&StateKey::new("cc", "k")).len(), 1);
        assert_eq!(c.height(), 1);
    }

    #[test]
    fn policy_failure_invalidates() {
        let n = net();
        let mut c = committer(
            &n,
            EndorsementPolicy::all_of([MspId::new("org1"), MspId::new("org2")]),
        );
        let env = envelope(&n, 1, write_set("k", b"v"), &[0]); // only org1
        let out = c.commit_block(block_of(&c, vec![env])).unwrap();
        assert_eq!(out.events[0].code, ValidationCode::EndorsementPolicyFailure);
        assert!(c.state().get(&StateKey::new("cc", "k")).is_none());
    }

    #[test]
    fn forged_endorsement_signature_invalidates() {
        let n = net();
        let mut c = committer(&n, EndorsementPolicy::any_of([MspId::new("org1")]));
        let mut env = envelope(&n, 1, write_set("k", b"v"), &[0]);
        env.endorsements[0].signature = Signature(Digest::of(b"forged"));
        let out = c.commit_block(block_of(&c, vec![env])).unwrap();
        assert_eq!(out.events[0].code, ValidationCode::BadSignature);
    }

    #[test]
    fn mvcc_conflict_within_block() {
        let n = net();
        let mut c = committer(&n, EndorsementPolicy::any_of([MspId::new("org1")]));
        // Both transactions read key "k" at version None and write it.
        let rw = |nonce: u64| RwSet {
            reads: vec![KvRead {
                key: StateKey::new("cc", "k"),
                version: None,
            }],
            writes: vec![KvWrite {
                key: StateKey::new("cc", "k"),
                value: Some(vec![nonce as u8]),
            }],
        };
        let e1 = envelope(&n, 1, rw(1), &[0]);
        let e2 = envelope(&n, 2, rw(2), &[0]);
        let out = c.commit_block(block_of(&c, vec![e1, e2])).unwrap();
        assert_eq!(out.events[0].code, ValidationCode::Valid);
        assert_eq!(out.events[1].code, ValidationCode::MvccReadConflict);
        assert_eq!(
            c.state().get(&StateKey::new("cc", "k")).unwrap().value,
            vec![1]
        );
    }

    #[test]
    fn duplicate_txid_across_blocks_invalidates() {
        let n = net();
        let mut c = committer(&n, EndorsementPolicy::any_of([MspId::new("org1")]));
        let env = envelope(&n, 1, write_set("k", b"v"), &[0]);
        c.commit_block(block_of(&c, vec![env.clone()])).unwrap();
        let out = c.commit_block(block_of(&c, vec![env])).unwrap();
        assert_eq!(out.events[0].code, ValidationCode::DuplicateTxId);
    }

    #[test]
    fn malformed_envelope_marked_bad() {
        let n = net();
        let mut c = committer(&n, EndorsementPolicy::any_of([MspId::new("org1")]));
        let raw = hyperprov_ledger::RawEnvelope {
            tx_id: TxId(Digest::of(b"junk")),
            bytes: vec![0xFF, 0x00],
        };
        let block = Block::build(0, Digest::ZERO, vec![raw]);
        let out = c.commit_block(block).unwrap();
        assert_eq!(out.events[0].code, ValidationCode::BadSignature);
        assert_eq!(out.invalid, 1);
    }

    #[test]
    fn wrong_chain_position_rejected_without_side_effects() {
        let n = net();
        let mut c = committer(&n, EndorsementPolicy::any_of([MspId::new("org1")]));
        let env = envelope(&n, 1, write_set("k", b"v"), &[0]);
        let bad = Block::build(7, Digest::ZERO, vec![env.to_raw()]);
        assert!(matches!(
            c.commit_block(bad),
            Err(ChainError::WrongNumber {
                got: 7,
                expected: 0
            })
        ));
        assert_eq!(c.height(), 0);
        assert!(c.state().is_empty());
    }

    #[test]
    fn later_tx_in_block_sees_earlier_writes() {
        let n = net();
        let mut c = committer(&n, EndorsementPolicy::any_of([MspId::new("org1")]));
        // tx1 writes k; tx2 reads k at the *new* version — this models a
        // client that simulated tx2 after tx1 committed. Inside one block
        // tx2's read version (1? no — block 0 tx 0) must match what tx1
        // wrote for tx2 to be valid.
        let e1 = envelope(&n, 1, write_set("k", b"v"), &[0]);
        let rw2 = RwSet {
            reads: vec![KvRead {
                key: StateKey::new("cc", "k"),
                version: Some(Version::new(0, 0)),
            }],
            writes: vec![KvWrite {
                key: StateKey::new("cc", "k2"),
                value: Some(b"w".to_vec()),
            }],
        };
        let e2 = envelope(&n, 2, rw2, &[0]);
        let out = c.commit_block(block_of(&c, vec![e1, e2])).unwrap();
        assert_eq!(out.events[0].code, ValidationCode::Valid);
        assert_eq!(out.events[1].code, ValidationCode::Valid);
    }

    #[test]
    fn replay_reconstructs_identical_ledger() {
        let n = net();
        let policy = EndorsementPolicy::any_of([MspId::new("org1")]);
        let mut original = committer(&n, policy.clone());
        // Build a few blocks, including one MVCC conflict.
        let e1 = envelope(&n, 1, write_set("a", b"1"), &[0]);
        original
            .commit_block(block_of(&original, vec![e1]))
            .unwrap();
        let conflicting = RwSet {
            reads: vec![KvRead {
                key: StateKey::new("cc", "a"),
                version: None, // stale: "a" now exists
            }],
            writes: vec![KvWrite {
                key: StateKey::new("cc", "a"),
                value: Some(b"2".to_vec()),
            }],
        };
        let e2 = envelope(&n, 2, conflicting, &[0]);
        let e3 = envelope(&n, 3, write_set("b", b"3"), &[0]);
        original
            .commit_block(block_of(&original, vec![e2, e3]))
            .unwrap();

        // Persist and replay through a fresh committer.
        let mut buf = Vec::new();
        original.store().write_to(&mut buf).unwrap();
        let loaded = hyperprov_ledger::BlockStore::read_from(buf.as_slice()).unwrap();
        let rebuilt = Committer::replay(
            n.msp.clone(),
            ChannelPolicies::new(policy),
            loaded.iter().cloned(),
        )
        .unwrap();

        assert_eq!(rebuilt.height(), original.height());
        assert_eq!(rebuilt.store().tip_hash(), original.store().tip_hash());
        // Same validation decisions, including the MVCC invalidation.
        let codes: Vec<_> = rebuilt.store().block(1).unwrap().metadata.codes.clone();
        assert_eq!(
            codes,
            vec![ValidationCode::MvccReadConflict, ValidationCode::Valid]
        );
        // Same world state.
        assert_eq!(
            rebuilt
                .state()
                .get(&StateKey::new("cc", "a"))
                .unwrap()
                .value,
            b"1"
        );
        assert_eq!(
            rebuilt
                .state()
                .get(&StateKey::new("cc", "b"))
                .unwrap()
                .value,
            b"3"
        );
        assert_eq!(
            rebuilt.history().total_entries(),
            original.history().total_entries()
        );
    }

    #[test]
    fn per_chaincode_policy_override() {
        let n = net();
        let mut policies = ChannelPolicies::new(EndorsementPolicy::any_of([MspId::new("org1")]));
        policies.set(
            "cc",
            EndorsementPolicy::all_of([MspId::new("org1"), MspId::new("org2")]),
        );
        assert_eq!(policies.policy_for("cc").min_endorsers(), 2);
        assert_eq!(policies.policy_for("other").min_endorsers(), 1);
        let mut c = Committer::new(n.msp.clone(), policies);
        let env = envelope(&n, 1, write_set("k", b"v"), &[0, 1]);
        let out = c.commit_block(block_of(&c, vec![env])).unwrap();
        assert_eq!(out.events[0].code, ValidationCode::Valid);
    }

    /// A toy indexer for graph-maintenance tests: keys `rec~<item>` carry
    /// a comma-separated parent list as their value.
    #[derive(Debug)]
    struct TestIndexer;

    impl hyperprov_ledger::GraphIndexer for TestIndexer {
        fn index(
            &self,
            key: &StateKey,
            value: Option<&[u8]>,
        ) -> Option<hyperprov_ledger::GraphUpdate> {
            let item = key.key.strip_prefix("rec~")?.to_owned();
            Some(match value {
                Some(bytes) => hyperprov_ledger::GraphUpdate::Insert {
                    key: item,
                    parents: String::from_utf8_lossy(bytes)
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned)
                        .collect(),
                },
                None => hyperprov_ledger::GraphUpdate::Remove { key: item },
            })
        }
    }

    #[test]
    fn graph_index_maintained_on_commit_and_rebuilt_on_recover() {
        let n = net();
        let policy = EndorsementPolicy::any_of([MspId::new("org1")]);
        let mut c = committer(&n, policy).with_indexer(Arc::new(TestIndexer));

        let e1 = envelope(&n, 1, write_set("rec~a", b""), &[0]);
        let e2 = envelope(&n, 2, write_set("rec~b", b"a"), &[0]);
        let out = c.commit_block(block_of(&c, vec![e1, e2])).unwrap();
        assert_eq!(out.dangling_parents, 0);
        // c references a committed parent and a missing one.
        let e3 = envelope(&n, 3, write_set("rec~c", b"a,ghost"), &[0]);
        let out = c.commit_block(block_of(&c, vec![e3])).unwrap();
        assert_eq!(out.dangling_parents, 1);

        assert_eq!(c.graph().len(), 3);
        assert_eq!(c.graph().dangling(), 1);
        let t = c.graph().traverse(
            &[(0, "c".to_owned())],
            hyperprov_ledger::Direction::Ancestors,
            hyperprov_ledger::TraversalLimits {
                max_depth: 8,
                max_nodes: 64,
            },
            false,
        );
        let keys: Vec<&str> = t.entries.iter().map(|(_, k)| k.as_str()).collect();
        assert_eq!(keys, vec!["c", "a"]);
        assert_eq!(t.boundary, vec![(1, "ghost".to_owned())]);
        assert!(c.graph_consistent());

        // Crash recovery replays the block store and rebuilds an
        // identical index (same structure, same dangling count).
        let rebuilt = c.recover().unwrap();
        assert_eq!(rebuilt.graph().digest(), c.graph().digest());
        assert_eq!(rebuilt.graph().dangling(), 1);
        assert!(rebuilt.graph_consistent());
    }

    #[test]
    fn graph_index_identical_on_split_commit_path() {
        let n = net();
        let policy = EndorsementPolicy::any_of([MspId::new("org1")]);
        let mut legacy = committer(&n, policy.clone()).with_indexer(Arc::new(TestIndexer));
        let mut split = committer(&n, policy).with_indexer(Arc::new(TestIndexer));

        let envs = vec![
            envelope(&n, 1, write_set("rec~a", b""), &[0]),
            envelope(&n, 2, write_set("rec~b", b"a,gone"), &[0]),
        ];
        let b_legacy = block_of(&legacy, envs.clone());
        let out_legacy = legacy.commit_block(b_legacy).unwrap();
        let b_split = block_of(&split, envs);
        let verdicts = split.vscc_block(&b_split, None);
        let out_split = split.commit_block_prevalidated(b_split, verdicts).unwrap();

        assert_eq!(out_legacy.dangling_parents, 1);
        assert_eq!(out_split.dangling_parents, 1);
        assert_eq!(legacy.graph().digest(), split.graph().digest());
    }

    #[test]
    fn snapshot_bootstrap_matches_full_replay() {
        let n = net();
        let policy = EndorsementPolicy::any_of([MspId::new("org1")]);
        let mut c = committer(&n, policy.clone()).with_indexer(Arc::new(TestIndexer));
        // A chain with provenance records, an MVCC conflict and (later) a
        // duplicate — everything a bootstrap must reproduce faithfully.
        for i in 0..6u64 {
            let env = envelope(
                &n,
                i + 1,
                write_set(&format!("rec~i{i}"), if i == 0 { b"" } else { b"i0" }),
                &[0],
            );
            c.commit_block(block_of(&c, vec![env])).unwrap();
        }
        let dup = envelope(&n, 1, write_set("rec~i0", b""), &[0]);

        // Snapshot at height 4, then two more blocks of deltas.
        let mut snapshot_at_4: Option<Snapshot> = None;
        let mut full = committer(&n, policy.clone()).with_indexer(Arc::new(TestIndexer));
        for block in c.store().iter().cloned() {
            full.commit_block({
                let mut b = block;
                b.metadata.codes.clear();
                b
            })
            .unwrap();
            if full.height() == 4 {
                snapshot_at_4 = Some(full.snapshot(3));
            }
        }
        full.commit_block(block_of(&full, vec![dup.clone()]))
            .unwrap();
        let snapshot = snapshot_at_4.unwrap();
        snapshot.verify().unwrap();
        assert_eq!(snapshot.manifest.height, 4);

        // Bootstrap: snapshot + delta blocks 4..7 (including one below
        // the horizon, which must be skipped).
        let deltas: Vec<Block> = full.store().iter().cloned().collect();
        let rebuilt = Committer::bootstrap_from_snapshot(
            ChannelId::default(),
            n.msp.clone(),
            ChannelPolicies::new(policy.clone()),
            Some(Arc::new(TestIndexer)),
            &snapshot,
            deltas,
        )
        .unwrap();

        assert_eq!(rebuilt.height(), full.height());
        assert_eq!(rebuilt.store().tip_hash(), full.store().tip_hash());
        assert_eq!(rebuilt.store().base_height(), 4);
        assert_eq!(rebuilt.state().state_hash(), full.state().state_hash());
        assert_eq!(
            rebuilt.history().total_entries(),
            full.history().total_entries()
        );
        assert_eq!(rebuilt.graph().digest(), full.graph().digest());
        assert!(rebuilt.graph_consistent());
        // The duplicate stays a duplicate after bootstrap: `seen` came
        // back with the snapshot.
        let out = {
            let mut r = rebuilt;
            let b = Block::build(r.height(), r.store().tip_hash(), vec![dup.to_raw()]);
            r.commit_block(b).unwrap()
        };
        assert_eq!(out.events[0].code, ValidationCode::DuplicateTxId);
    }

    #[test]
    fn bootstrap_rejects_bad_snapshots() {
        let n = net();
        let policy = EndorsementPolicy::any_of([MspId::new("org1")]);
        let mut c = committer(&n, policy.clone()).with_indexer(Arc::new(TestIndexer));
        let env = envelope(&n, 1, write_set("rec~a", b""), &[0]);
        c.commit_block(block_of(&c, vec![env])).unwrap();
        let good = c.snapshot(4);

        let boot = |snap: &Snapshot, channel: ChannelId| {
            Committer::bootstrap_from_snapshot(
                channel,
                n.msp.clone(),
                ChannelPolicies::new(policy.clone()),
                Some(Arc::new(TestIndexer)),
                snap,
                std::iter::empty(),
            )
        };

        // Tampered state entry.
        let mut bad = good.clone();
        bad.chunks[0].entries[0].value = b"evil".to_vec();
        assert!(matches!(
            boot(&bad, ChannelId::default()),
            Err(BootstrapError::Snapshot(_))
        ));
        // Wrong channel.
        assert!(matches!(
            boot(&good, ChannelId::new("other")),
            Err(BootstrapError::WrongChannel { .. })
        ));
        // Forged graph digest (state consistent, commitment wrong).
        let mut forged = good.clone();
        forged.manifest.graph_digest = Digest::of(b"forged");
        assert!(matches!(
            boot(&forged, ChannelId::default()),
            Err(BootstrapError::GraphDigestMismatch)
        ));
        // A delta block that does not link.
        let orphan = Block::build(9, Digest::of(b"nowhere"), vec![]);
        assert!(matches!(
            Committer::bootstrap_from_snapshot(
                ChannelId::default(),
                n.msp.clone(),
                ChannelPolicies::new(policy.clone()),
                Some(Arc::new(TestIndexer)),
                &good,
                vec![orphan],
            ),
            Err(BootstrapError::Chain(_))
        ));
        for e in [
            BootstrapError::Snapshot(SnapshotError::ZeroHeight),
            BootstrapError::WrongChannel {
                got: "a".into(),
                expected: "b".into(),
            },
            BootstrapError::GraphDigestMismatch,
            BootstrapError::Chain(ChainError::BrokenLink { at: 1 }),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn bootstrap_error_eq_derives() {
        // PartialEq on BootstrapError is exercised via From impls too.
        assert_eq!(
            BootstrapError::from(SnapshotError::RootMismatch),
            BootstrapError::Snapshot(SnapshotError::RootMismatch)
        );
        assert_eq!(
            BootstrapError::from(ChainError::BrokenLink { at: 2 }),
            BootstrapError::Chain(ChainError::BrokenLink { at: 2 })
        );
    }

    #[test]
    fn prevalidated_path_matches_legacy_on_mixed_block() {
        let n = net();
        let policy = EndorsementPolicy::any_of([MspId::new("org1")]);
        let mut legacy = committer(&n, policy.clone());
        let mut split = committer(&n, policy);
        let mut cache = crate::SigVerifyCache::new();

        // A mix: valid, forged signature, MVCC conflict pair, and (in a
        // second block) a duplicate of the first transaction.
        let e_valid = envelope(&n, 1, write_set("a", b"1"), &[0]);
        let mut e_forged = envelope(&n, 2, write_set("b", b"2"), &[0]);
        e_forged.endorsements[0].signature = Signature(Digest::of(b"forged"));
        let stale = |nonce: u64| RwSet {
            reads: vec![KvRead {
                key: StateKey::new("cc", "hot"),
                version: None,
            }],
            writes: vec![KvWrite {
                key: StateKey::new("cc", "hot"),
                value: Some(vec![nonce as u8]),
            }],
        };
        let e_win = envelope(&n, 3, stale(3), &[0]);
        let e_lose = envelope(&n, 4, stale(4), &[0]);
        let envs = [&e_valid, &e_forged, &e_win, &e_lose];
        let blocks = |c: &Committer| {
            Block::build(
                c.height(),
                c.store().tip_hash(),
                envs.iter().map(|e| e.to_raw()).collect(),
            )
        };

        let b1_legacy = blocks(&legacy);
        let out_legacy = legacy.commit_block(b1_legacy).unwrap();
        let b1_split = blocks(&split);
        let verdicts = split.vscc_block(&b1_split, Some(&mut cache));
        let out_split = split.commit_block_prevalidated(b1_split, verdicts).unwrap();

        let codes = |c: &Committer, h: u64| c.store().block(h).unwrap().metadata.codes.clone();
        assert_eq!(codes(&legacy, 0), codes(&split, 0));
        assert_eq!(out_legacy.valid, out_split.valid);
        assert_eq!(out_legacy.bytes_written, out_split.bytes_written);
        assert_eq!(out_legacy.written_keys, out_split.written_keys);
        assert_eq!(legacy.state().state_hash(), split.state().state_hash());

        // Block 2: duplicate of e_valid. The split path runs (cached)
        // signature checks eagerly, but the serial phase still reports
        // DuplicateTxId just like the legacy validator.
        let b2_legacy = Block::build(
            legacy.height(),
            legacy.store().tip_hash(),
            vec![e_valid.to_raw()],
        );
        legacy.commit_block(b2_legacy).unwrap();
        let b2_split = Block::build(
            split.height(),
            split.store().tip_hash(),
            vec![e_valid.to_raw()],
        );
        let verdicts = split.vscc_block(&b2_split, Some(&mut cache));
        assert_eq!(verdicts[0].sig_hits, 1); // same (cert, msg, sig) as block 1
        split.commit_block_prevalidated(b2_split, verdicts).unwrap();
        assert_eq!(codes(&legacy, 1), codes(&split, 1));
        assert_eq!(codes(&split, 1), vec![ValidationCode::DuplicateTxId]);
        assert_eq!(legacy.state().state_hash(), split.state().state_hash());
    }
}
