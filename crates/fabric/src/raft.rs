//! A compact Raft consensus implementation for the ordering service.
//!
//! Fabric v1.4.1 introduced Raft-based ordering; HyperProv's edge scenario
//! (Vegvisir discussion in the paper's Related Work) motivates an ordering
//! service that survives node failures and partitions. This module is a
//! sans-IO state machine: the caller delivers [`RaftMsg`]s and clock ticks
//! and ships the produced messages — so the same code runs under the
//! deterministic simulator and in unit tests.
//!
//! Scope: leader election, log replication, commit-index advancement with
//! the "current-term only" rule, and follower log repair. Log compaction,
//! snapshotting and membership changes are out of scope (Fabric's orderer
//! does not need them for the paper's experiments).

use std::collections::{BTreeSet, HashMap};

use hyperprov_sim::DetRng;
use rand::Rng;

/// Index of a raft peer within the cluster (0-based).
pub type PeerIdx = usize;

/// Raft node role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Follows a leader; starts elections on timeout.
    Follower,
    /// Campaigning for votes.
    Candidate,
    /// Replicates the log and serves proposals.
    Leader,
}

/// A replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry<T> {
    /// Term in which the entry was created.
    pub term: u64,
    /// The replicated payload (an ordering batch).
    pub payload: T,
}

/// Messages exchanged between raft peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaftMsg<T> {
    /// Candidate requests a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Candidate's index.
        candidate: PeerIdx,
        /// Index of candidate's last log entry.
        last_log_index: u64,
        /// Term of candidate's last log entry.
        last_log_term: u64,
    },
    /// Reply to a vote request.
    VoteReply {
        /// Voter's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
        /// The voter.
        from: PeerIdx,
    },
    /// Leader replicates entries / sends heartbeats.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// The leader.
        leader: PeerIdx,
        /// Index of the entry preceding `entries` (0 = none).
        prev_index: u64,
        /// Term of that entry (0 if none).
        prev_term: u64,
        /// Entries to append (empty for heartbeat).
        entries: Vec<LogEntry<T>>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Reply to AppendEntries.
    AppendReply {
        /// Follower's current term.
        term: u64,
        /// Whether the entries matched and were appended.
        success: bool,
        /// The follower.
        from: PeerIdx,
        /// Highest index known replicated on the follower (on success).
        match_index: u64,
    },
}

/// Everything a step produced: messages to send and newly committed
/// payloads to apply.
#[derive(Debug)]
pub struct RaftOutput<T> {
    /// `(destination, message)` pairs to ship over the network.
    pub messages: Vec<(PeerIdx, RaftMsg<T>)>,
    /// Payloads whose commit index was just reached, in log order,
    /// as `(log index, payload)`.
    pub committed: Vec<(u64, T)>,
}

impl<T> RaftOutput<T> {
    fn empty() -> Self {
        RaftOutput {
            messages: Vec::new(),
            committed: Vec::new(),
        }
    }
}

/// Election/heartbeat timing, in ticks (the driver picks the tick length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaftConfig {
    /// Minimum election timeout in ticks.
    pub election_timeout_min: u32,
    /// Maximum election timeout in ticks (exclusive bound for random draw).
    pub election_timeout_max: u32,
    /// Leader heartbeat period in ticks.
    pub heartbeat_interval: u32,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout_min: 10,
            election_timeout_max: 20,
            heartbeat_interval: 3,
        }
    }
}

/// One raft peer.
#[derive(Debug)]
pub struct RaftNode<T> {
    id: PeerIdx,
    cluster_size: usize,
    config: RaftConfig,
    rng: DetRng,

    term: u64,
    voted_for: Option<PeerIdx>,
    log: Vec<LogEntry<T>>,
    commit_index: u64,
    applied_index: u64,

    role: Role,
    votes: BTreeSet<PeerIdx>,
    leader_hint: Option<PeerIdx>,

    // Leader state.
    next_index: HashMap<PeerIdx, u64>,
    match_index: HashMap<PeerIdx, u64>,

    elapsed: u32,
    election_deadline: u32,
}

impl<T: Clone> RaftNode<T> {
    /// Creates a follower in term 0.
    pub fn new(id: PeerIdx, cluster_size: usize, config: RaftConfig, seed: u64) -> Self {
        assert!(cluster_size >= 1, "cluster must have at least one node");
        assert!(id < cluster_size, "node id out of range");
        assert!(
            config.election_timeout_min < config.election_timeout_max,
            "election timeout range must be non-empty"
        );
        let mut rng = DetRng::new(seed).fork_index(id as u64);
        let election_deadline =
            rng.gen_range(config.election_timeout_min..config.election_timeout_max);
        RaftNode {
            id,
            cluster_size,
            config,
            rng,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_index: 0,
            applied_index: 0,
            role: Role::Follower,
            votes: BTreeSet::new(),
            leader_hint: None,
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            elapsed: 0,
            election_deadline,
        }
    }

    /// This node's index.
    pub fn id(&self) -> PeerIdx {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// True if this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// The leader this node believes in, if any.
    pub fn leader_hint(&self) -> Option<PeerIdx> {
        if self.is_leader() {
            Some(self.id)
        } else {
            self.leader_hint
        }
    }

    /// Highest committed log index.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Log length (highest index; indices are 1-based).
    pub fn last_index(&self) -> u64 {
        self.log.len() as u64
    }

    fn last_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(0)
    }

    fn majority(&self) -> usize {
        self.cluster_size / 2 + 1
    }

    fn others(&self) -> impl Iterator<Item = PeerIdx> + '_ {
        (0..self.cluster_size).filter(move |&p| p != self.id)
    }

    fn reset_election_timer(&mut self) {
        self.elapsed = 0;
        self.election_deadline = self
            .rng
            .gen_range(self.config.election_timeout_min..self.config.election_timeout_max);
    }

    /// Advances the local clock by one tick.
    pub fn tick(&mut self) -> RaftOutput<T> {
        self.elapsed += 1;
        match self.role {
            Role::Leader => {
                if self.elapsed >= self.config.heartbeat_interval {
                    self.elapsed = 0;
                    return self.broadcast_append();
                }
                RaftOutput::empty()
            }
            Role::Follower | Role::Candidate => {
                if self.elapsed >= self.election_deadline {
                    self.start_election()
                } else {
                    RaftOutput::empty()
                }
            }
        }
    }

    fn start_election(&mut self) -> RaftOutput<T> {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes.clear();
        self.votes.insert(self.id);
        self.leader_hint = None;
        self.reset_election_timer();
        if self.votes.len() >= self.majority() {
            return self.become_leader();
        }
        let mut out = RaftOutput::empty();
        for peer in self.others().collect::<Vec<_>>() {
            out.messages.push((
                peer,
                RaftMsg::RequestVote {
                    term: self.term,
                    candidate: self.id,
                    last_log_index: self.last_index(),
                    last_log_term: self.last_term(),
                },
            ));
        }
        out
    }

    fn become_leader(&mut self) -> RaftOutput<T> {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        self.next_index.clear();
        self.match_index.clear();
        let next = self.last_index() + 1;
        for peer in self.others().collect::<Vec<_>>() {
            self.next_index.insert(peer, next);
            self.match_index.insert(peer, 0);
        }
        self.elapsed = 0;
        self.broadcast_append()
    }

    fn become_follower(&mut self, term: u64, leader: Option<PeerIdx>) {
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.votes.clear();
        self.leader_hint = leader;
        self.reset_election_timer();
    }

    /// Proposes a payload for replication.
    ///
    /// # Errors
    ///
    /// Returns `Err(payload)` (giving the payload back) if this node is not
    /// the leader; the caller should redirect to [`RaftNode::leader_hint`].
    pub fn propose(&mut self, payload: T) -> Result<RaftOutput<T>, T> {
        if !self.is_leader() {
            return Err(payload);
        }
        self.log.push(LogEntry {
            term: self.term,
            payload,
        });
        if self.cluster_size == 1 {
            // Single-node cluster commits immediately.
            let mut out = RaftOutput::empty();
            self.commit_index = self.last_index();
            self.drain_applied(&mut out);
            return Ok(out);
        }
        Ok(self.broadcast_append())
    }

    fn broadcast_append(&mut self) -> RaftOutput<T> {
        let mut out = RaftOutput::empty();
        for peer in self.others().collect::<Vec<_>>() {
            let next = *self.next_index.get(&peer).unwrap_or(&1);
            let prev_index = next.saturating_sub(1);
            let prev_term = if prev_index == 0 {
                0
            } else {
                self.log[(prev_index - 1) as usize].term
            };
            let entries: Vec<LogEntry<T>> =
                self.log.iter().skip((next - 1) as usize).cloned().collect();
            out.messages.push((
                peer,
                RaftMsg::AppendEntries {
                    term: self.term,
                    leader: self.id,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit: self.commit_index,
                },
            ));
        }
        out
    }

    /// Handles one incoming message.
    pub fn step(&mut self, msg: RaftMsg<T>) -> RaftOutput<T> {
        match msg {
            RaftMsg::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(term, candidate, last_log_index, last_log_term),
            RaftMsg::VoteReply {
                term,
                granted,
                from,
            } => self.on_vote_reply(term, granted, from),
            RaftMsg::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                leader_commit,
            } => self.on_append(term, leader, prev_index, prev_term, entries, leader_commit),
            RaftMsg::AppendReply {
                term,
                success,
                from,
                match_index,
            } => self.on_append_reply(term, success, from, match_index),
        }
    }

    fn on_request_vote(
        &mut self,
        term: u64,
        candidate: PeerIdx,
        last_log_index: u64,
        last_log_term: u64,
    ) -> RaftOutput<T> {
        let mut out = RaftOutput::empty();
        if term > self.term {
            self.become_follower(term, None);
        }
        let log_ok = last_log_term > self.last_term()
            || (last_log_term == self.last_term() && last_log_index >= self.last_index());
        let granted = term == self.term
            && log_ok
            && (self.voted_for.is_none() || self.voted_for == Some(candidate));
        if granted {
            self.voted_for = Some(candidate);
            self.reset_election_timer();
        }
        out.messages.push((
            candidate,
            RaftMsg::VoteReply {
                term: self.term,
                granted,
                from: self.id,
            },
        ));
        out
    }

    fn on_vote_reply(&mut self, term: u64, granted: bool, from: PeerIdx) -> RaftOutput<T> {
        if term > self.term {
            self.become_follower(term, None);
            return RaftOutput::empty();
        }
        if self.role != Role::Candidate || term < self.term || !granted {
            return RaftOutput::empty();
        }
        self.votes.insert(from);
        if self.votes.len() >= self.majority() {
            return self.become_leader();
        }
        RaftOutput::empty()
    }

    fn on_append(
        &mut self,
        term: u64,
        leader: PeerIdx,
        prev_index: u64,
        prev_term: u64,
        entries: Vec<LogEntry<T>>,
        leader_commit: u64,
    ) -> RaftOutput<T> {
        let mut out = RaftOutput::empty();
        if term < self.term {
            out.messages.push((
                leader,
                RaftMsg::AppendReply {
                    term: self.term,
                    success: false,
                    from: self.id,
                    match_index: 0,
                },
            ));
            return out;
        }
        // Valid leader for this term (or newer): follow it.
        self.become_follower(term, Some(leader));

        // Log consistency check.
        let prev_ok = prev_index == 0
            || (prev_index <= self.last_index()
                && self.log[(prev_index - 1) as usize].term == prev_term);
        if !prev_ok {
            out.messages.push((
                leader,
                RaftMsg::AppendReply {
                    term: self.term,
                    success: false,
                    from: self.id,
                    match_index: 0,
                },
            ));
            return out;
        }

        // Append, truncating any conflicting suffix.
        let mut idx = prev_index;
        for entry in entries {
            idx += 1;
            if idx <= self.last_index() {
                if self.log[(idx - 1) as usize].term != entry.term {
                    self.log.truncate((idx - 1) as usize);
                    self.log.push(entry);
                }
            } else {
                self.log.push(entry);
            }
        }

        if leader_commit > self.commit_index {
            self.commit_index = leader_commit.min(self.last_index());
            self.drain_applied(&mut out);
        }

        out.messages.push((
            leader,
            RaftMsg::AppendReply {
                term: self.term,
                success: true,
                from: self.id,
                match_index: idx.max(prev_index),
            },
        ));
        out
    }

    fn on_append_reply(
        &mut self,
        term: u64,
        success: bool,
        from: PeerIdx,
        match_index: u64,
    ) -> RaftOutput<T> {
        let mut out = RaftOutput::empty();
        if term > self.term {
            self.become_follower(term, None);
            return out;
        }
        if self.role != Role::Leader || term < self.term {
            return out;
        }
        if success {
            self.match_index.insert(from, match_index);
            self.next_index.insert(from, match_index + 1);
            self.advance_commit(&mut out);
        } else {
            // Back off and retry on the next heartbeat.
            let next = self.next_index.entry(from).or_insert(1);
            *next = next.saturating_sub(1).max(1);
        }
        out
    }

    fn advance_commit(&mut self, out: &mut RaftOutput<T>) {
        // Find the highest index replicated on a majority whose entry is
        // from the current term.
        let mut indices: Vec<u64> = self.match_index.values().copied().collect();
        indices.push(self.last_index()); // self
        indices.sort_unstable_by(|a, b| b.cmp(a));
        let candidate = indices[self.majority() - 1];
        if candidate > self.commit_index
            && candidate >= 1
            && self.log[(candidate - 1) as usize].term == self.term
        {
            self.commit_index = candidate;
            self.drain_applied(out);
        }
    }

    fn drain_applied(&mut self, out: &mut RaftOutput<T>) {
        while self.applied_index < self.commit_index {
            self.applied_index += 1;
            let entry = &self.log[(self.applied_index - 1) as usize];
            out.committed
                .push((self.applied_index, entry.payload.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory cluster harness that delivers messages instantly, with an
    /// optional partition set.
    struct Cluster {
        nodes: Vec<RaftNode<u64>>,
        blocked: BTreeSet<(PeerIdx, PeerIdx)>,
        committed: Vec<Vec<(u64, u64)>>,
    }

    impl Cluster {
        fn new(n: usize) -> Self {
            Cluster {
                nodes: (0..n)
                    .map(|i| RaftNode::new(i, n, RaftConfig::default(), 42))
                    .collect(),
                blocked: BTreeSet::new(),
                committed: vec![Vec::new(); n],
            }
        }

        fn partition(&mut self, a: PeerIdx, b: PeerIdx) {
            self.blocked.insert((a, b));
            self.blocked.insert((b, a));
        }

        fn heal(&mut self) {
            self.blocked.clear();
        }

        fn dispatch(&mut self, from: PeerIdx, out: RaftOutput<u64>) {
            self.committed[from].extend(out.committed);
            let mut queue: Vec<(PeerIdx, PeerIdx, RaftMsg<u64>)> = out
                .messages
                .into_iter()
                .map(|(dst, m)| (from, dst, m))
                .collect();
            while let Some((src, dst, msg)) = queue.pop() {
                if self.blocked.contains(&(src, dst)) {
                    continue;
                }
                let next = self.nodes[dst].step(msg);
                self.committed[dst].extend(next.committed);
                queue.extend(next.messages.into_iter().map(|(d, m)| (dst, d, m)));
            }
        }

        fn tick_all(&mut self) {
            for i in 0..self.nodes.len() {
                let out = self.nodes[i].tick();
                self.dispatch(i, out);
            }
        }

        fn run_ticks(&mut self, n: u32) {
            for _ in 0..n {
                self.tick_all();
            }
        }

        fn leader(&self) -> Option<PeerIdx> {
            self.nodes.iter().position(RaftNode::is_leader)
        }

        fn propose(&mut self, payload: u64) -> bool {
            if let Some(l) = self.leader() {
                match self.nodes[l].propose(payload) {
                    Ok(out) => {
                        self.dispatch(l, out);
                        return true;
                    }
                    Err(_) => return false,
                }
            }
            false
        }
    }

    #[test]
    fn single_node_elects_and_commits_instantly() {
        let mut c = Cluster::new(1);
        c.run_ticks(25);
        assert_eq!(c.leader(), Some(0));
        assert!(c.propose(7));
        assert_eq!(c.committed[0], vec![(1, 7)]);
    }

    #[test]
    fn three_nodes_elect_exactly_one_leader() {
        let mut c = Cluster::new(3);
        c.run_ticks(50);
        let leaders = c.nodes.iter().filter(|n| n.is_leader()).count();
        assert_eq!(leaders, 1);
        let term = c.nodes[c.leader().unwrap()].term();
        for n in &c.nodes {
            assert_eq!(n.term(), term);
            assert_eq!(n.leader_hint(), c.leader());
        }
    }

    #[test]
    fn replication_commits_on_all_nodes() {
        let mut c = Cluster::new(3);
        c.run_ticks(50);
        assert!(c.propose(11));
        assert!(c.propose(22));
        c.run_ticks(10); // heartbeats propagate commit index
        for i in 0..3 {
            assert_eq!(c.committed[i], vec![(1, 11), (2, 22)], "node {i}");
        }
    }

    #[test]
    fn leader_failure_triggers_new_election() {
        let mut c = Cluster::new(3);
        c.run_ticks(50);
        let old = c.leader().unwrap();
        assert!(c.propose(1));
        c.run_ticks(5);
        // Isolate the old leader.
        for p in 0..3 {
            if p != old {
                c.partition(old, p);
            }
        }
        c.run_ticks(60);
        let survivors: Vec<PeerIdx> = (0..3).filter(|&p| p != old).collect();
        let new = survivors
            .iter()
            .copied()
            .find(|&p| c.nodes[p].is_leader())
            .expect("a survivor should take over");
        assert_ne!(new, old);
        assert!(c.nodes[new].term() > c.nodes[old].term() || !c.nodes[old].is_leader());
        // New leader can commit.
        let out = c.nodes[new].propose(99).ok().unwrap();
        c.dispatch(new, out);
        c.run_ticks(10);
        assert!(c.committed[new].iter().any(|&(_, v)| v == 99));
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut c = Cluster::new(5);
        c.run_ticks(60);
        let leader = c.leader().unwrap();
        // Cut the leader plus one follower off from the other three.
        let follower = (0..5).find(|&p| p != leader).unwrap();
        for p in 0..5 {
            if p != leader && p != follower {
                c.partition(leader, p);
                c.partition(follower, p);
            }
        }
        // Old leader accepts a proposal but can never commit it.
        let before: usize = c.committed[leader].len();
        if let Ok(out) = c.nodes[leader].propose(666) {
            c.dispatch(leader, out);
        }
        c.run_ticks(80);
        assert_eq!(
            c.committed[leader].len(),
            before,
            "minority must not commit"
        );
        assert!(!c.committed.iter().flatten().any(|&(_, v)| v == 666));
        // Majority side elected a new leader and can commit.
        let majority_leader = (0..5)
            .filter(|&p| p != leader && p != follower)
            .find(|&p| c.nodes[p].is_leader())
            .expect("majority side should elect");
        let out = c.nodes[majority_leader].propose(777).ok().unwrap();
        c.dispatch(majority_leader, out);
        c.run_ticks(10);
        assert!(c.committed[majority_leader].iter().any(|&(_, v)| v == 777));
    }

    #[test]
    fn healed_partition_converges_logs() {
        let mut c = Cluster::new(3);
        c.run_ticks(50);
        let leader = c.leader().unwrap();
        let isolated = (0..3).find(|&p| p != leader).unwrap();
        for p in 0..3 {
            if p != isolated {
                c.partition(isolated, p);
            }
        }
        assert!(c.propose(5));
        assert!(c.propose(6));
        c.run_ticks(10);
        c.heal();
        c.run_ticks(80);
        // The isolated node catches up (possibly after re-election churn).
        let committed_values: Vec<u64> = c.committed[isolated].iter().map(|&(_, v)| v).collect();
        assert!(committed_values.contains(&5) && committed_values.contains(&6));
        // All nodes agree on prefix order.
        for i in 0..3 {
            let vals: Vec<u64> = c.committed[i].iter().map(|&(_, v)| v).collect();
            let five = vals.iter().position(|&v| v == 5).unwrap();
            let six = vals.iter().position(|&v| v == 6).unwrap();
            assert!(five < six, "node {i} order");
        }
    }

    #[test]
    fn proposals_to_non_leader_are_rejected() {
        let mut c = Cluster::new(3);
        c.run_ticks(50);
        let leader = c.leader().unwrap();
        let follower = (0..3).find(|&p| p != leader).unwrap();
        assert!(matches!(c.nodes[follower].propose(1), Err(1)));
        assert_eq!(c.nodes[follower].leader_hint(), Some(leader));
    }

    #[test]
    fn no_commit_without_majority_ack_of_current_term() {
        // Direct state machine check: a leader alone in a 3-cluster never
        // advances its commit index.
        let mut n: RaftNode<u64> = RaftNode::new(
            0,
            3,
            RaftConfig {
                election_timeout_min: 2,
                election_timeout_max: 3,
                heartbeat_interval: 1,
            },
            7,
        );
        // Force election timeout.
        let mut out = RaftOutput::empty();
        for _ in 0..5 {
            out = n.tick();
            if !out.messages.is_empty() {
                break;
            }
        }
        assert_eq!(n.role(), Role::Candidate);
        // Grant both votes.
        let o = n.step(RaftMsg::VoteReply {
            term: n.term(),
            granted: true,
            from: 1,
        });
        drop(o);
        assert!(n.is_leader());
        let _ = n.propose(9).unwrap();
        assert_eq!(n.commit_index(), 0);
        drop(out);
    }

    #[test]
    #[should_panic(expected = "cluster must have at least one node")]
    fn zero_cluster_panics() {
        let _: RaftNode<u64> = RaftNode::new(0, 0, RaftConfig::default(), 1);
    }
}
