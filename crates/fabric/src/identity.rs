//! Membership service provider (MSP): organisations, certificates and
//! signatures.
//!
//! Fabric identifies every actor by an X.509 certificate issued by an
//! organisation's CA and signs with ECDSA. This reproduction keeps the
//! *structure* — certificates carry a subject and an organisation, every
//! proposal/endorsement is signed, and verification is rooted in a
//! membership registry — while replacing ECDSA with deterministic
//! HMAC-SHA-256 tags verified through the [`Msp`] registry (the registry
//! plays the role of the trust root: only enrolled certificates verify).
//! DESIGN.md documents why this substitution preserves the paper's
//! behaviour; the signing/verification CPU cost is modelled by the device
//! profiles.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use hyperprov_ledger::{hmac_sha256, CodecError, Decode, Decoder, Digest, Encode, Encoder};

/// An organisation (membership service provider) identifier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MspId(pub String);

impl MspId {
    /// Creates an organisation id.
    pub fn new(id: impl Into<String>) -> Self {
        MspId(id.into())
    }
}

impl fmt::Display for MspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Encode for MspId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.0);
    }
}
impl Decode for MspId {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(MspId(dec.get_str()?))
    }
}

/// Uniquely identifies an enrolled certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CertId(pub Digest);

impl Encode for CertId {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
    }
}
impl Decode for CertId {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CertId(Digest::decode(dec)?))
    }
}

/// A certificate: who (subject), which org, and the enrolment id.
///
/// HyperProv stores the creator certificate with every provenance record,
/// answering "who stored this data".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Certificate {
    /// Human-readable subject, e.g. `"client0@org1"`.
    pub subject: String,
    /// Issuing organisation.
    pub org: MspId,
    /// Enrolment id (digest of subject, org and enrolment counter).
    pub id: CertId,
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.subject, self.org)
    }
}

impl Encode for Certificate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.subject);
        self.org.encode(enc);
        self.id.encode(enc);
    }
}
impl Decode for Certificate {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Certificate {
            subject: dec.get_str()?,
            org: MspId::decode(dec)?,
            id: CertId::decode(dec)?,
        })
    }
}

/// A signature tag over a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub Digest);

impl Encode for Signature {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
    }
}
impl Decode for Signature {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Signature(Digest::decode(dec)?))
    }
}

/// A certificate together with its signing key.
#[derive(Debug, Clone)]
pub struct SigningIdentity {
    cert: Certificate,
    secret: [u8; 32],
}

impl SigningIdentity {
    /// The public certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.secret, message))
    }
}

/// The membership registry: enrols identities and verifies signatures.
///
/// Built once at network-setup time and then shared immutably (wrap in an
/// [`Arc`] via [`MspBuilder::build`]).
///
/// # Examples
///
/// ```
/// use hyperprov_fabric::{MspBuilder, MspId};
///
/// let mut builder = MspBuilder::new(7);
/// let alice = builder.enroll("alice", &MspId::new("org1"));
/// let msp = builder.build();
/// let sig = alice.sign(b"hello");
/// assert!(msp.verify(alice.certificate(), b"hello", &sig));
/// assert!(!msp.verify(alice.certificate(), b"other", &sig));
/// ```
#[derive(Debug)]
pub struct Msp {
    certs: HashMap<CertId, (Certificate, [u8; 32])>,
    orgs: Vec<MspId>,
}

impl Msp {
    /// True if the certificate is enrolled (same subject/org/id).
    pub fn is_enrolled(&self, cert: &Certificate) -> bool {
        self.certs
            .get(&cert.id)
            .map(|(c, _)| c == cert)
            .unwrap_or(false)
    }

    /// Verifies `sig` over `message` for `cert`.
    ///
    /// Returns `false` for unknown certificates, mismatching certificate
    /// contents, or wrong tags.
    pub fn verify(&self, cert: &Certificate, message: &[u8], sig: &Signature) -> bool {
        match self.certs.get(&cert.id) {
            Some((enrolled, secret)) if enrolled == cert => hmac_sha256(secret, message) == sig.0,
            _ => false,
        }
    }

    /// All organisations that have enrolled at least one identity,
    /// in enrolment order.
    pub fn orgs(&self) -> &[MspId] {
        &self.orgs
    }

    /// Number of enrolled identities.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// True if nothing is enrolled.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }
}

/// Builder that enrols identities before freezing the [`Msp`].
#[derive(Debug)]
pub struct MspBuilder {
    msp: Msp,
    seed: u64,
    counter: u64,
}

impl MspBuilder {
    /// Creates a builder; `seed` makes key material deterministic.
    pub fn new(seed: u64) -> Self {
        MspBuilder {
            msp: Msp {
                certs: HashMap::new(),
                orgs: Vec::new(),
            },
            seed,
            counter: 0,
        }
    }

    /// Enrols a new identity under `org` and returns its signing identity.
    pub fn enroll(&mut self, subject: &str, org: &MspId) -> SigningIdentity {
        self.counter += 1;
        // Deterministic key material: digest of (seed, counter, subject, org).
        let mut enc = Encoder::new();
        enc.put_u64(self.seed);
        enc.put_u64(self.counter);
        enc.put_str(subject);
        enc.put_str(&org.0);
        let secret = *Digest::of(&enc.into_bytes()).as_bytes();
        let mut id_enc = Encoder::new();
        id_enc.put_str(subject);
        id_enc.put_str(&org.0);
        id_enc.put_u64(self.counter);
        let id = CertId(Digest::of(&id_enc.into_bytes()));
        let cert = Certificate {
            subject: subject.to_owned(),
            org: org.clone(),
            id,
        };
        self.msp.certs.insert(id, (cert.clone(), secret));
        if !self.msp.orgs.contains(org) {
            self.msp.orgs.push(org.clone());
        }
        SigningIdentity { cert, secret }
    }

    /// Freezes the registry for shared use.
    pub fn build(self) -> Arc<Msp> {
        Arc::new(self.msp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Msp>, SigningIdentity, SigningIdentity) {
        let mut b = MspBuilder::new(1);
        let alice = b.enroll("alice", &MspId::new("org1"));
        let bob = b.enroll("bob", &MspId::new("org2"));
        (b.build(), alice, bob)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (msp, alice, _) = setup();
        let sig = alice.sign(b"msg");
        assert!(msp.verify(alice.certificate(), b"msg", &sig));
    }

    #[test]
    fn wrong_message_or_signer_rejected() {
        let (msp, alice, bob) = setup();
        let sig = alice.sign(b"msg");
        assert!(!msp.verify(alice.certificate(), b"other", &sig));
        assert!(!msp.verify(bob.certificate(), b"msg", &sig));
        let bobsig = bob.sign(b"msg");
        assert!(!msp.verify(alice.certificate(), b"msg", &bobsig));
    }

    #[test]
    fn unenrolled_certificate_rejected() {
        let (msp, alice, _) = setup();
        let mut rogue = MspBuilder::new(999);
        let mallory = rogue.enroll("mallory", &MspId::new("org1"));
        let sig = mallory.sign(b"msg");
        assert!(!msp.verify(mallory.certificate(), b"msg", &sig));
        // Forged certificate reusing a valid id but different subject.
        let mut forged = alice.certificate().clone();
        forged.subject = "eve".to_owned();
        assert!(!msp.is_enrolled(&forged));
        assert!(!msp.verify(&forged, b"msg", &alice.sign(b"msg")));
    }

    #[test]
    fn deterministic_enrolment() {
        let mut b1 = MspBuilder::new(5);
        let mut b2 = MspBuilder::new(5);
        let a1 = b1.enroll("a", &MspId::new("org1"));
        let a2 = b2.enroll("a", &MspId::new("org1"));
        assert_eq!(a1.certificate(), a2.certificate());
        assert_eq!(a1.sign(b"x"), a2.sign(b"x"));
        // Different seed gives different keys.
        let mut b3 = MspBuilder::new(6);
        let a3 = b3.enroll("a", &MspId::new("org1"));
        assert_ne!(a1.sign(b"x"), a3.sign(b"x"));
    }

    #[test]
    fn orgs_tracked_in_enrolment_order() {
        let mut b = MspBuilder::new(1);
        b.enroll("p1", &MspId::new("orgB"));
        b.enroll("p2", &MspId::new("orgA"));
        b.enroll("p3", &MspId::new("orgB"));
        let msp = b.build();
        assert_eq!(msp.orgs(), &[MspId::new("orgB"), MspId::new("orgA")]);
        assert_eq!(msp.len(), 3);
        assert!(!msp.is_empty());
    }

    #[test]
    fn certificate_codec_round_trip() {
        let (_, alice, _) = setup();
        let cert = alice.certificate();
        let back = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(&back, cert);
    }

    #[test]
    fn same_subject_twice_gets_distinct_ids() {
        let mut b = MspBuilder::new(1);
        let c1 = b.enroll("dup", &MspId::new("org1"));
        let c2 = b.enroll("dup", &MspId::new("org1"));
        assert_ne!(c1.certificate().id, c2.certificate().id);
    }
}
