//! Hardware device profiles matching the paper's two testbeds.
//!
//! The desktop setup: two Xeon E5-1603 (2.8 GHz), one i7-4700MQ
//! (2.4 GHz), one i3-2310M (2.1 GHz), SSDs, gigabit switch. The edge
//! setup: four Raspberry Pi 3B+ (Cortex-A53 @ 1.4 GHz, USB2-attached
//! ethernet) on one switch. A profile carries the relative CPU speed (the
//! reference core is the Xeon), the device's link characteristics and its
//! energy model.

use hyperprov_sim::{LinkSpec, SimDuration};

use crate::energy::EnergyModel;

/// A concrete machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable model name.
    pub name: String,
    /// CPU speed relative to the reference core (Xeon E5-1603 = 1.0).
    pub cpu_speed: f64,
    /// Physical cores available to a node on this device (bounds how many
    /// commit-pipeline lanes deployment will grant a peer).
    pub cores: usize,
    /// Characteristics of this device's network attachment.
    pub nic: LinkSpec,
    /// Power/energy parameters.
    pub energy: EnergyModel,
}

impl DeviceProfile {
    /// Intel Xeon E5-1603 @ 2.80 GHz — the reference machine (two of the
    /// paper's desktop nodes; one also hosts the orderer).
    pub fn xeon_e5_1603() -> Self {
        DeviceProfile {
            name: "Intel Xeon E5-1603 2.80GHz".to_owned(),
            cpu_speed: 1.0,
            cores: 4,
            nic: desktop_nic(),
            energy: EnergyModel::desktop(),
        }
    }

    /// Intel Core i7-4700MQ @ 2.40 GHz — newer microarchitecture, faster
    /// per clock than the reference Xeon.
    pub fn core_i7_4700mq() -> Self {
        DeviceProfile {
            name: "Intel Core i7-4700MQ 2.40GHz".to_owned(),
            cpu_speed: 1.15,
            cores: 4,
            nic: desktop_nic(),
            energy: EnergyModel::desktop(),
        }
    }

    /// Intel Core i3-2310M @ 2.10 GHz — the slowest desktop node.
    pub fn core_i3_2310m() -> Self {
        DeviceProfile {
            name: "Intel Core i3-2310M 2.10GHz".to_owned(),
            cpu_speed: 0.65,
            cores: 2,
            nic: desktop_nic(),
            energy: EnergyModel::desktop(),
        }
    }

    /// Raspberry Pi 3B+ — Cortex-A53 @ 1.4 GHz, ethernet bridged over
    /// USB 2.0 (~230 Mbit/s effective), running 64-bit Debian Buster with
    /// self-compiled ARM64 HLF images, as in the paper.
    pub fn raspberry_pi_3b_plus() -> Self {
        DeviceProfile {
            name: "Raspberry Pi 3B+ (Cortex-A53 1.4GHz)".to_owned(),
            // In-order A53 at half the clock: ~8x slower than the Xeon on
            // crypto/serialisation workloads.
            cpu_speed: 0.13,
            // Quad-core Cortex-A53.
            cores: 4,
            nic: LinkSpec {
                latency: SimDuration::from_micros(350),
                bandwidth_bps: 230_000_000,
                // The paper notes "greater variation" on RPi.
                jitter_frac: 0.35,
            },
            energy: EnergyModel::raspberry_pi(),
        }
    }

    /// The neutral reference profile (speed 1.0, LAN link).
    pub fn reference() -> Self {
        DeviceProfile {
            name: "reference".to_owned(),
            cpu_speed: 1.0,
            cores: 1,
            nic: LinkSpec::lan(),
            energy: EnergyModel::desktop(),
        }
    }
}

fn desktop_nic() -> LinkSpec {
    LinkSpec {
        latency: SimDuration::from_micros(120),
        bandwidth_bps: 1_000_000_000,
        jitter_frac: 0.05,
    }
}

/// Picks the link spec to use between two devices: the slower NIC bounds
/// the path (they share one switch in both testbeds).
pub fn link_between(a: &DeviceProfile, b: &DeviceProfile) -> LinkSpec {
    let lat = a.nic.latency.max(b.nic.latency);
    let bw = a.nic.bandwidth_bps.min(b.nic.bandwidth_bps);
    let jitter = a.nic.jitter_frac.max(b.nic.jitter_frac);
    LinkSpec {
        latency: lat,
        bandwidth_bps: bw,
        jitter_frac: jitter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpi_is_roughly_an_order_of_magnitude_slower() {
        let desktop = DeviceProfile::xeon_e5_1603();
        let rpi = DeviceProfile::raspberry_pi_3b_plus();
        let ratio = desktop.cpu_speed / rpi.cpu_speed;
        assert!((5.0..=12.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn desktop_faster_nic_than_rpi() {
        let desktop = DeviceProfile::xeon_e5_1603();
        let rpi = DeviceProfile::raspberry_pi_3b_plus();
        assert!(desktop.nic.bandwidth_bps > rpi.nic.bandwidth_bps);
        assert!(desktop.nic.jitter_frac < rpi.nic.jitter_frac);
    }

    #[test]
    fn link_between_takes_the_weaker_side() {
        let desktop = DeviceProfile::xeon_e5_1603();
        let rpi = DeviceProfile::raspberry_pi_3b_plus();
        let link = link_between(&desktop, &rpi);
        assert_eq!(link.bandwidth_bps, rpi.nic.bandwidth_bps);
        assert_eq!(link.latency, rpi.nic.latency);
        let sym = link_between(&rpi, &desktop);
        assert_eq!(link, sym);
    }

    #[test]
    fn desktop_cpu_ordering_matches_hardware() {
        let i7 = DeviceProfile::core_i7_4700mq();
        let xeon = DeviceProfile::xeon_e5_1603();
        let i3 = DeviceProfile::core_i3_2310m();
        assert!(i7.cpu_speed > xeon.cpu_speed);
        assert!(xeon.cpu_speed > i3.cpu_speed);
    }
}
