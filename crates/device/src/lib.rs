//! # hyperprov-device
//!
//! Hardware models for the paper's two testbeds: desktop x86-64 machines
//! and Raspberry Pi 3B+ edge devices.
//!
//! * [`DeviceProfile`] — CPU speed factor, NIC characteristics and energy
//!   parameters per machine model,
//! * [`EnergyModel`]/[`PowerMeter`] — the virtual ODROID power meter that
//!   regenerates Figure 3, and
//! * [`link_between`] — pairwise link selection for a shared switch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod profile;

pub use energy::{EnergyModel, PowerMeter, PowerSample};
pub use profile::{link_between, DeviceProfile};
