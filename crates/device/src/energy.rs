//! The energy model and the virtual power meter.
//!
//! The paper measures RPi power with an ODROID Smart Power V3 between the
//! device and its supply, sampling while HyperProv runs at increasing load
//! for 10-minute intervals. Key published numbers (Fig. 3): ~2.71 W with
//! HLF running but idle, at most 3.64 W under load, and peak load only
//! ~10.7 % above HLF-idle on average.
//!
//! We model instantaneous power as an affine function of CPU utilisation:
//!
//! ```text
//! P(u) = idle + (hlf_idle - idle)·[hlf running] + (max - hlf_idle)·u
//! ```
//!
//! and integrate it over the busy-interval log kept by each simulated
//! CPU, sampled at a configurable rate like the physical meter.

use hyperprov_sim::{CpuResource, SimDuration, SimTime};

/// Power parameters of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Idle power with no HyperProv software running, in watts.
    pub idle_watts: f64,
    /// Power with HLF containers up but no transactions, in watts.
    pub hlf_idle_watts: f64,
    /// Power at 100 % CPU utilisation, in watts.
    pub max_watts: f64,
}

impl EnergyModel {
    /// Raspberry Pi 3B+ parameters calibrated to the paper's Figure 3.
    pub fn raspberry_pi() -> Self {
        EnergyModel {
            idle_watts: 2.58,
            hlf_idle_watts: 2.71,
            max_watts: 3.64,
        }
    }

    /// A desktop-class machine (not metered in the paper; plausible SSD
    /// workstation envelope for the baseline-comparison benches).
    pub fn desktop() -> Self {
        EnergyModel {
            idle_watts: 38.0,
            hlf_idle_watts: 41.0,
            max_watts: 95.0,
        }
    }

    /// Instantaneous power at CPU utilisation `u` (clamped to `[0, 1]`).
    pub fn power(&self, utilization: f64, hlf_running: bool) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        if hlf_running {
            self.hlf_idle_watts + (self.max_watts - self.hlf_idle_watts) * u
        } else {
            self.idle_watts
        }
    }
}

/// One power reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// End of the sampling window.
    pub at: SimTime,
    /// Average power over the window, in watts.
    pub watts: f64,
}

/// A virtual ODROID-style power meter for one device.
#[derive(Debug, Clone, Copy)]
pub struct PowerMeter {
    model: EnergyModel,
    interval: SimDuration,
}

impl PowerMeter {
    /// Creates a meter sampling at the given interval (the physical meter
    /// logs about once per second).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(model: EnergyModel, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be non-zero");
        PowerMeter { model, interval }
    }

    /// The model being metered.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Samples the window `[from, to)` of a device's CPU log.
    pub fn sample(
        &self,
        cpu: &CpuResource,
        from: SimTime,
        to: SimTime,
        hlf_running: bool,
    ) -> Vec<PowerSample> {
        let mut out = Vec::new();
        let mut cursor = from;
        while cursor < to {
            let end = (cursor + self.interval).min(to);
            let u = cpu.utilization(cursor, end);
            out.push(PowerSample {
                at: end,
                watts: self.model.power(u, hlf_running),
            });
            cursor = end;
        }
        out
    }

    /// Average power over `[from, to)`, in watts.
    pub fn average_watts(
        &self,
        cpu: &CpuResource,
        from: SimTime,
        to: SimTime,
        hlf_running: bool,
    ) -> f64 {
        if to <= from {
            return self.model.power(0.0, hlf_running);
        }
        let u = cpu.utilization(from, to);
        self.model.power(u, hlf_running)
    }

    /// Peak sampled power over `[from, to)`, in watts.
    pub fn peak_watts(
        &self,
        cpu: &CpuResource,
        from: SimTime,
        to: SimTime,
        hlf_running: bool,
    ) -> f64 {
        self.sample(cpu, from, to, hlf_running)
            .iter()
            .map(|s| s.watts)
            .fold(self.model.power(0.0, hlf_running), f64::max)
    }

    /// Samples a device hosting *several* processes (e.g. the paper's RPi
    /// running both peer and client): utilisation is the sum over all
    /// CPUs, clamped at 1.
    pub fn sample_combined(
        &self,
        cpus: &[&CpuResource],
        from: SimTime,
        to: SimTime,
        hlf_running: bool,
    ) -> Vec<PowerSample> {
        let mut out = Vec::new();
        let mut cursor = from;
        while cursor < to {
            let end = (cursor + self.interval).min(to);
            let u: f64 = cpus.iter().map(|c| c.utilization(cursor, end)).sum();
            out.push(PowerSample {
                at: end,
                watts: self.model.power(u, hlf_running),
            });
            cursor = end;
        }
        out
    }

    /// Average power of a multi-process device over `[from, to)`, in
    /// watts (mean of the per-interval samples).
    pub fn average_watts_combined(
        &self,
        cpus: &[&CpuResource],
        from: SimTime,
        to: SimTime,
        hlf_running: bool,
    ) -> f64 {
        let samples = self.sample_combined(cpus, from, to, hlf_running);
        if samples.is_empty() {
            return self.model.power(0.0, hlf_running);
        }
        samples.iter().map(|s| s.watts).sum::<f64>() / samples.len() as f64
    }

    /// Peak sampled power of a multi-process device over `[from, to)`.
    pub fn peak_watts_combined(
        &self,
        cpus: &[&CpuResource],
        from: SimTime,
        to: SimTime,
        hlf_running: bool,
    ) -> f64 {
        self.sample_combined(cpus, from, to, hlf_running)
            .iter()
            .map(|s| s.watts)
            .fold(self.model.power(0.0, hlf_running), f64::max)
    }

    /// Energy consumed over `[from, to)`, in joules.
    pub fn energy_joules(
        &self,
        cpu: &CpuResource,
        from: SimTime,
        to: SimTime,
        hlf_running: bool,
    ) -> f64 {
        self.sample(cpu, from, to, hlf_running)
            .iter()
            .map(|s| s.watts * self.interval.as_secs_f64())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn model_matches_published_anchors() {
        let m = EnergyModel::raspberry_pi();
        assert!((m.power(0.0, true) - 2.71).abs() < 1e-9);
        assert!((m.power(1.0, true) - 3.64).abs() < 1e-9);
        assert!(m.power(0.0, false) < m.power(0.0, true));
        // Clamping.
        assert_eq!(m.power(2.0, true), m.power(1.0, true));
        assert_eq!(m.power(-1.0, true), m.power(0.0, true));
    }

    #[test]
    fn idle_device_draws_hlf_idle_power() {
        let cpu = CpuResource::new(1.0);
        let meter = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::from_secs(1));
        let avg = meter.average_watts(&cpu, t(0), t(600), true);
        assert!((avg - 2.71).abs() < 1e-9);
        let without = meter.average_watts(&cpu, t(0), t(600), false);
        assert!((without - 2.58).abs() < 1e-9);
    }

    #[test]
    fn busy_device_draws_more() {
        let mut cpu = CpuResource::new(1.0);
        // Busy half of a 10-second window.
        cpu.execute(t(0), SimDuration::from_secs(5));
        let meter = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::from_secs(1));
        let avg = meter.average_watts(&cpu, t(0), t(10), true);
        let expected = 2.71 + (3.64 - 2.71) * 0.5;
        assert!((avg - expected).abs() < 1e-6, "{avg}");
        let peak = meter.peak_watts(&cpu, t(0), t(10), true);
        assert!((peak - 3.64).abs() < 1e-6, "{peak}"); // first seconds fully busy
    }

    #[test]
    fn samples_cover_window_exactly() {
        let cpu = CpuResource::new(1.0);
        let meter = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::from_secs(1));
        let samples = meter.sample(&cpu, t(0), t(10), true);
        assert_eq!(samples.len(), 10);
        assert_eq!(samples.last().unwrap().at, t(10));
        // Partial final window.
        let samples = meter.sample(&cpu, t(0), SimTime::from_nanos(2_500_000_000), true);
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn energy_integrates_power() {
        let cpu = CpuResource::new(1.0);
        let meter = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::from_secs(1));
        let joules = meter.energy_joules(&cpu, t(0), t(600), true);
        // 2.71 W for 600 s = 1626 J.
        assert!((joules - 1626.0).abs() < 1.0, "{joules}");
    }

    #[test]
    fn combined_utilisation_sums_and_clamps() {
        let mut peer = CpuResource::new(1.0);
        let mut client = CpuResource::new(1.0);
        peer.execute(t(0), SimDuration::from_secs(8)); // 80% of [0,10)
        client.execute(t(0), SimDuration::from_secs(6)); // 60% of [0,10)
        let meter = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::from_secs(10));
        let avg = meter.average_watts_combined(&[&peer, &client], t(0), t(10), true);
        // Sum 1.4 clamps to 1.0 → max watts.
        assert!((avg - 3.64).abs() < 1e-9, "{avg}");
        let peak = meter.peak_watts_combined(&[&peer, &client], t(0), t(10), true);
        assert!((peak - 3.64).abs() < 1e-9);
        // Idle pair draws hlf-idle.
        let idle = CpuResource::new(1.0);
        let avg = meter.average_watts_combined(&[&idle], t(0), t(10), true);
        assert!((avg - 2.71).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_interval_rejected() {
        let _ = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::ZERO);
    }
}
