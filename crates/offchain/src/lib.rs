//! # hyperprov-offchain
//!
//! Off-chain payload storage for HyperProv. The chain records only
//! metadata (checksum, location, lineage); the payload itself lives in an
//! [`ObjectStore`]:
//!
//! * [`MemoryStore`] — in-memory backend for simulations and tests,
//! * [`FsStore`] — a real directory-backed backend,
//! * [`ContentStore`] — content-addressed wrapper (name = SHA-256), and
//! * [`StorageActor`]/[`StoreMsg`] — the simulated remote SSHFS node with
//!   per-operation SSH overhead and per-byte service cost, matching the
//!   paper's "off-chain storage always runs on a separate node" setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sshfs;
mod store;

pub use sshfs::{StorageActor, StorageCosts, StoreMsg};
pub use store::{validate_name, ContentStore, FsStore, MemoryStore, ObjectStore, StoreError};
