//! Object-store backends: the [`ObjectStore`] trait with in-memory and
//! local-filesystem implementations, plus a content-addressed wrapper.
//!
//! HyperProv keeps only metadata on-chain; the payload goes to a pluggable
//! store (the paper uses SSHFS). These backends provide the storage
//! semantics; the timing of the paper's remote SSHFS node is modelled by
//! [`crate::StorageActor`].

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::PathBuf;

use hyperprov_ledger::Digest;
use parking_lot::RwLock;

/// Error from an object-store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named object does not exist.
    NotFound(String),
    /// The name contains characters the backend cannot store safely.
    InvalidName(String),
    /// An underlying I/O failure (filesystem backend).
    Io(String),
    /// The storage node's admission queue is full (bounded-queue mode
    /// with a nack policy); the client may retry.
    Busy,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(name) => write!(f, "object not found: {name}"),
            StoreError::InvalidName(name) => write!(f, "invalid object name: {name:?}"),
            StoreError::Io(err) => write!(f, "storage I/O error: {err}"),
            StoreError::Busy => write!(f, "storage node busy: admission queue full"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        StoreError::Io(err.to_string())
    }
}

/// A named blob store.
///
/// Implementations must be safe for shared use (`Send + Sync`); the
/// simulated storage node and the synchronous client facade both hold
/// references.
pub trait ObjectStore: Send + Sync {
    /// Stores `data` under `name`, replacing any existing object.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] or [`StoreError::Io`].
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError>;

    /// Retrieves the object named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if absent.
    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Deletes the object named `name` (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn delete(&self, name: &str) -> Result<(), StoreError>;

    /// True if an object with this name exists.
    fn contains(&self, name: &str) -> bool;

    /// Number of stored objects.
    fn len(&self) -> usize;

    /// True if the store holds no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Validates an object name: non-empty, printable, no path separators.
pub fn validate_name(name: &str) -> Result<(), StoreError> {
    if name.is_empty()
        || name.len() > 255
        || name
            .chars()
            .any(|c| c.is_control() || c == '/' || c == '\\' || c == '\0')
        || name == "."
        || name == ".."
    {
        return Err(StoreError::InvalidName(name.to_owned()));
    }
    Ok(())
}

/// An in-memory object store.
///
/// # Examples
///
/// ```
/// use hyperprov_offchain::{MemoryStore, ObjectStore};
///
/// let store = MemoryStore::new();
/// store.put("item", b"data")?;
/// assert_eq!(store.get("item")?, b"data");
/// # Ok::<(), hyperprov_offchain::StoreError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: RwLock<HashMap<String, Vec<u8>>>,
}

impl MemoryStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Total bytes stored across all objects.
    pub fn total_bytes(&self) -> u64 {
        self.map.read().values().map(|v| v.len() as u64).sum()
    }

    /// Overwrites stored bytes *without* going through `put` — test helper
    /// for simulating off-chain tampering.
    pub fn tamper(&self, name: &str, data: &[u8]) -> bool {
        let mut map = self.map.write();
        match map.get_mut(name) {
            Some(slot) => {
                *slot = data.to_vec();
                true
            }
            None => false,
        }
    }
}

impl ObjectStore for MemoryStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        validate_name(name)?;
        self.map.write().insert(name.to_owned(), data.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.map
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_owned()))
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        self.map.write().remove(name);
        Ok(())
    }

    fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    fn len(&self) -> usize {
        self.map.read().len()
    }
}

/// A directory-backed object store (one file per object).
#[derive(Debug)]
pub struct FsStore {
    root: PathBuf,
}

impl FsStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FsStore { root })
    }

    fn path_of(&self, name: &str) -> Result<PathBuf, StoreError> {
        validate_name(name)?;
        Ok(self.root.join(name))
    }
}

impl ObjectStore for FsStore {
    fn put(&self, name: &str, data: &[u8]) -> Result<(), StoreError> {
        let path = self.path_of(name)?;
        // Write-then-rename for atomicity.
        let tmp = self.root.join(format!(".{name}.tmp"));
        fs::write(&tmp, data)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.path_of(name)?;
        match fs::read(&path) {
            Ok(data) => Ok(data),
            Err(err) if err.kind() == io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(name.to_owned()))
            }
            Err(err) => Err(err.into()),
        }
    }

    fn delete(&self, name: &str) -> Result<(), StoreError> {
        let path = self.path_of(name)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(err) => Err(err.into()),
        }
    }

    fn contains(&self, name: &str) -> bool {
        self.path_of(name).map(|p| p.exists()).unwrap_or(false)
    }

    fn len(&self) -> usize {
        fs::read_dir(&self.root)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .map(|n| !n.starts_with('.'))
                            .unwrap_or(false)
                    })
                    .count()
            })
            .unwrap_or(0)
    }
}

/// Content-addressed view over any [`ObjectStore`]: the object name is the
/// SHA-256 of its contents, so integrity is verifiable by construction.
#[derive(Debug)]
pub struct ContentStore<S> {
    inner: S,
}

impl<S: ObjectStore> ContentStore<S> {
    /// Wraps a backing store.
    pub fn new(inner: S) -> Self {
        ContentStore { inner }
    }

    /// Stores `data`, returning its content digest (the object name).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn put(&self, data: &[u8]) -> Result<Digest, StoreError> {
        let digest = Digest::of(data);
        self.inner.put(&digest.to_hex(), data)?;
        Ok(digest)
    }

    /// Fetches by digest and verifies the contents still match it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if absent, or [`StoreError::Io`]
    /// with a tamper message if the content no longer hashes to `digest`.
    pub fn get_verified(&self, digest: &Digest) -> Result<Vec<u8>, StoreError> {
        let data = self.inner.get(&digest.to_hex())?;
        if Digest::of(&data) != *digest {
            return Err(StoreError::Io(format!(
                "content tampered: stored bytes no longer match {}",
                digest.short()
            )));
        }
        Ok(data)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        assert!(store.is_empty());
        store.put("a", b"1").unwrap();
        store.put("b", b"22").unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.contains("a"));
        assert_eq!(store.get("b").unwrap(), b"22");
        store.put("a", b"replaced").unwrap();
        assert_eq!(store.get("a").unwrap(), b"replaced");
        store.delete("a").unwrap();
        assert!(!store.contains("a"));
        assert_eq!(store.get("a"), Err(StoreError::NotFound("a".into())));
        store.delete("a").unwrap(); // idempotent
    }

    #[test]
    fn memory_store_semantics() {
        let store = MemoryStore::new();
        exercise(&store);
        store.put("x", &[0u8; 100]).unwrap();
        assert_eq!(store.total_bytes(), 102);
    }

    #[test]
    fn fs_store_semantics() {
        let dir = std::env::temp_dir().join(format!("hyperprov-fsstore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = FsStore::open(&dir).unwrap();
        exercise(&store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_names_rejected() {
        let store = MemoryStore::new();
        for bad in ["", "a/b", "a\\b", ".", "..", "nul\0byte", "ctl\x07"] {
            assert!(
                matches!(store.put(bad, b"x"), Err(StoreError::InvalidName(_))),
                "{bad:?}"
            );
        }
        let long = "x".repeat(256);
        assert!(store.put(&long, b"x").is_err());
    }

    #[test]
    fn tamper_helper_modifies_in_place() {
        let store = MemoryStore::new();
        store.put("victim", b"good").unwrap();
        assert!(store.tamper("victim", b"evil"));
        assert_eq!(store.get("victim").unwrap(), b"evil");
        assert!(!store.tamper("missing", b"x"));
    }

    #[test]
    fn content_store_verifies_integrity() {
        let store = ContentStore::new(MemoryStore::new());
        let digest = store.put(b"payload").unwrap();
        assert_eq!(store.get_verified(&digest).unwrap(), b"payload");
        // Tamper under the hood.
        store.inner().tamper(&digest.to_hex(), b"evil");
        let err = store.get_verified(&digest).unwrap_err();
        assert!(matches!(err, StoreError::Io(ref msg) if msg.contains("tampered")));
        // Unknown digest.
        let missing = Digest::of(b"never stored");
        assert!(matches!(
            store.get_verified(&missing),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(!StoreError::NotFound("n".into()).to_string().is_empty());
        assert!(!StoreError::InvalidName("i".into()).to_string().is_empty());
        assert!(!StoreError::Io("io".into()).to_string().is_empty());
    }
}
