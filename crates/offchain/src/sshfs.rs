//! The simulated SSHFS storage node.
//!
//! The paper runs its off-chain store as an SSH filesystem on a separate
//! machine; every access therefore pays an SSH round trip plus a
//! bandwidth-limited transfer. In the simulation the transfer cost comes
//! from the network link to the [`StorageActor`]; this module adds the
//! per-operation SSH overhead and the server-side I/O cost.

use std::sync::Arc;

use hyperprov_sim::{
    Actor, ActorId, Admission, Carries, Context, Event, QueueConfig, ServiceHarness, SimDuration,
    SpanClose,
};

use crate::store::{ObjectStore, StoreError};

/// Messages between clients and the storage node.
#[derive(Debug, Clone)]
pub enum StoreMsg {
    /// Store an object.
    Put {
        /// Object name.
        name: String,
        /// Payload.
        data: Vec<u8>,
        /// Correlation token echoed in the ack.
        token: u64,
    },
    /// Acknowledge a put.
    PutAck {
        /// Object name.
        name: String,
        /// Correlation token.
        token: u64,
        /// Result of the store operation.
        result: Result<(), StoreError>,
    },
    /// Fetch an object.
    Get {
        /// Object name.
        name: String,
        /// Correlation token echoed in the reply.
        token: u64,
    },
    /// Reply to a get.
    GetResult {
        /// Object name.
        name: String,
        /// Correlation token.
        token: u64,
        /// The object bytes or the failure.
        result: Result<Vec<u8>, StoreError>,
    },
    /// Delete an object.
    Delete {
        /// Object name.
        name: String,
        /// Correlation token echoed in the ack.
        token: u64,
    },
    /// Acknowledge a delete.
    DeleteAck {
        /// Object name.
        name: String,
        /// Correlation token.
        token: u64,
    },
}

impl StoreMsg {
    /// The object name the message refers to.
    pub fn object_name(&self) -> &str {
        match self {
            StoreMsg::Put { name, .. }
            | StoreMsg::PutAck { name, .. }
            | StoreMsg::Get { name, .. }
            | StoreMsg::GetResult { name, .. }
            | StoreMsg::Delete { name, .. }
            | StoreMsg::DeleteAck { name, .. } => name,
        }
    }

    /// Approximate wire size for the network model (requests carry their
    /// payload; replies carry the fetched bytes).
    pub fn wire_size(&self) -> u64 {
        match self {
            StoreMsg::Put { name, data, .. } => name.len() as u64 + data.len() as u64 + 64,
            StoreMsg::GetResult { name, result, .. } => {
                name.len() as u64 + result.as_ref().map(|d| d.len() as u64).unwrap_or(16) + 64
            }
            StoreMsg::Get { name, .. }
            | StoreMsg::PutAck { name, .. }
            | StoreMsg::Delete { name, .. }
            | StoreMsg::DeleteAck { name, .. } => name.len() as u64 + 64,
        }
    }
}

impl Carries<StoreMsg> for StoreMsg {
    fn wrap(inner: StoreMsg) -> Self {
        inner
    }
    fn peel(self) -> Result<StoreMsg, Self> {
        Ok(self)
    }
}

/// Timing parameters of the SSHFS-like service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageCosts {
    /// Fixed per-operation overhead (SSH channel + FUSE round trip).
    pub op_overhead: SimDuration,
    /// Server-side cost per payload byte (encryption + disk).
    pub per_byte: SimDuration,
}

impl Default for StorageCosts {
    fn default() -> Self {
        StorageCosts {
            op_overhead: SimDuration::from_micros(800),
            per_byte: SimDuration::from_nanos(8),
        }
    }
}

impl StorageCosts {
    /// Service time for an operation moving `bytes` bytes.
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        self.op_overhead + self.per_byte * bytes
    }
}

/// The storage node actor: serves puts/gets/deletes over a shared
/// [`ObjectStore`], charging SSH-like service time per request.
pub struct StorageActor<M> {
    store: Arc<dyn ObjectStore>,
    costs: StorageCosts,
    harness: ServiceHarness<M>,
}

impl<M: Carries<StoreMsg>> StorageActor<M> {
    /// Creates a storage node over `store`.
    pub fn new(store: Arc<dyn ObjectStore>, costs: StorageCosts) -> Self {
        StorageActor {
            store,
            costs,
            harness: ServiceHarness::new("storage"),
        }
    }

    /// Bounds the node's admission queue.
    ///
    /// Under [`hyperprov_sim::OverloadPolicy::Nack`], rejected puts and
    /// gets are acked with [`StoreError::Busy`]; a rejected delete has no
    /// error channel in its ack, so it is dropped (counted under
    /// `storage.nacked_deletes`) and the caller sees a timeout.
    #[must_use]
    pub fn with_queue(mut self, config: QueueConfig) -> Self {
        self.harness.set_queue(config);
        self
    }

    /// The backing store (shared with e.g. audit code).
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    fn finish_later(
        &mut self,
        ctx: &mut Context<'_, M>,
        dst: ActorId,
        bytes_moved: u64,
        reply: StoreMsg,
    ) {
        let job = self.harness.next_job();
        // Server-side service span (SSH overhead + per-byte I/O); the job
        // number disambiguates concurrent operations on one object.
        let name = reply.object_name().to_owned();
        ctx.span_start(&name, "offchain.server", &job.to_string());
        let close = SpanClose::new(name.clone(), "offchain.server", job.to_string());
        let bytes = reply.wire_size();
        self.harness.defer_request(
            ctx,
            self.costs.service_time(bytes_moved),
            &name,
            vec![(dst, bytes, M::wrap(reply))],
            vec![close],
        );
    }

    fn serve(&mut self, ctx: &mut Context<'_, M>, src: ActorId, msg: StoreMsg) {
        match msg {
            StoreMsg::Put { name, data, token } => {
                let bytes = data.len() as u64;
                let result = self.store.put(&name, &data);
                ctx.metrics().incr("storage.puts", 1);
                ctx.metrics().incr("storage.bytes_in", bytes);
                self.finish_later(
                    ctx,
                    src,
                    bytes,
                    StoreMsg::PutAck {
                        name,
                        token,
                        result,
                    },
                );
            }
            StoreMsg::Get { name, token } => {
                let result = self.store.get(&name);
                let bytes = result.as_ref().map(|d| d.len() as u64).unwrap_or(0);
                ctx.metrics().incr("storage.gets", 1);
                ctx.metrics().incr("storage.bytes_out", bytes);
                self.finish_later(
                    ctx,
                    src,
                    bytes,
                    StoreMsg::GetResult {
                        name,
                        token,
                        result,
                    },
                );
            }
            StoreMsg::Delete { name, token } => {
                let _ = self.store.delete(&name);
                ctx.metrics().incr("storage.deletes", 1);
                self.finish_later(ctx, src, 0, StoreMsg::DeleteAck { name, token });
            }
            // Replies are never addressed to the server.
            StoreMsg::PutAck { .. } | StoreMsg::GetResult { .. } | StoreMsg::DeleteAck { .. } => {}
        }
    }

    /// Sends an immediate busy rejection for a request the admission queue
    /// turned away. Nacks skip the service queue entirely (the SSH server
    /// refuses the channel before any I/O happens), so no CPU is charged.
    fn nack(&mut self, ctx: &mut Context<'_, M>, src: ActorId, msg: StoreMsg) {
        let reply = match msg {
            StoreMsg::Put { name, token, .. } => StoreMsg::PutAck {
                name,
                token,
                result: Err(StoreError::Busy),
            },
            StoreMsg::Get { name, token } => StoreMsg::GetResult {
                name,
                token,
                result: Err(StoreError::Busy),
            },
            StoreMsg::Delete { .. } => {
                // DeleteAck carries no result; the caller times out.
                ctx.metrics().incr("storage.nacked_deletes", 1);
                return;
            }
            StoreMsg::PutAck { .. } | StoreMsg::GetResult { .. } | StoreMsg::DeleteAck { .. } => {
                return;
            }
        };
        let bytes = reply.wire_size();
        ctx.send(src, bytes, M::wrap(reply));
    }
}

impl<M: Carries<StoreMsg>> Actor<M> for StorageActor<M> {
    fn on_event(&mut self, ctx: &mut Context<'_, M>, event: Event<M>) {
        match event {
            Event::Message { src, msg } => {
                let msg = match msg.peel() {
                    Ok(m) => m,
                    Err(_) => return,
                };
                // Replies never consume an admission slot.
                if matches!(
                    msg,
                    StoreMsg::PutAck { .. }
                        | StoreMsg::GetResult { .. }
                        | StoreMsg::DeleteAck { .. }
                ) {
                    return;
                }
                match self.harness.admit(ctx, src, M::wrap(msg)) {
                    Admission::Admit(msg) => {
                        if let Ok(msg) = msg.peel() {
                            self.serve(ctx, src, msg);
                        }
                    }
                    Admission::Nack(msg) => {
                        if let Ok(msg) = msg.peel() {
                            self.nack(ctx, src, msg);
                        }
                    }
                    Admission::Done => {}
                }
            }
            Event::Timer { token } => {
                let _ = self.harness.on_timer(ctx, token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use hyperprov_sim::{SimTime, Simulation};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, Default)]
    struct Seen {
        acks: Vec<(String, u64, bool)>,
        gets: Vec<(u64, Result<Vec<u8>, StoreError>)>,
        done_at: Option<SimTime>,
    }

    struct TestClient {
        server: ActorId,
        script: Vec<StoreMsg>,
        seen: Rc<RefCell<Seen>>,
    }

    impl Actor<StoreMsg> for TestClient {
        fn on_event(&mut self, ctx: &mut Context<'_, StoreMsg>, event: Event<StoreMsg>) {
            match event {
                Event::Timer { .. } => {
                    for msg in self.script.drain(..) {
                        let bytes = msg.wire_size();
                        ctx.send(self.server, bytes, msg);
                    }
                }
                Event::Message { msg, .. } => {
                    let mut seen = self.seen.borrow_mut();
                    match msg {
                        StoreMsg::PutAck {
                            name,
                            token,
                            result,
                        } => {
                            seen.acks.push((name, token, result.is_ok()));
                        }
                        StoreMsg::GetResult { token, result, .. } => {
                            seen.gets.push((token, result));
                        }
                        _ => {}
                    }
                    seen.done_at = Some(ctx.now());
                }
            }
        }
    }

    fn run_script(script: Vec<StoreMsg>) -> (Seen, Simulation<StoreMsg>, Arc<MemoryStore>) {
        let store = Arc::new(MemoryStore::new());
        let mut sim = Simulation::new(1);
        let server = sim.add_actor(Box::new(StorageActor::<StoreMsg>::new(
            store.clone(),
            StorageCosts::default(),
        )));
        let seen = Rc::new(RefCell::new(Seen::default()));
        let client = sim.add_actor(Box::new(TestClient {
            server,
            script,
            seen: seen.clone(),
        }));
        sim.start_timer(client, SimDuration::ZERO, 0);
        sim.run();
        let out = std::mem::take(&mut *seen.borrow_mut());
        (out, sim, store)
    }

    #[test]
    fn put_then_get_round_trip() {
        let (seen, sim, store) = run_script(vec![
            StoreMsg::Put {
                name: "obj".into(),
                data: b"payload".to_vec(),
                token: 1,
            },
            StoreMsg::Get {
                name: "obj".into(),
                token: 2,
            },
        ]);
        assert_eq!(seen.acks, vec![("obj".to_owned(), 1, true)]);
        assert_eq!(seen.gets.len(), 1);
        assert_eq!(seen.gets[0].1.as_ref().unwrap(), b"payload");
        assert_eq!(sim.metrics().counter("storage.puts"), 1);
        assert_eq!(sim.metrics().counter("storage.gets"), 1);
        assert!(store.contains("obj"));
    }

    #[test]
    fn get_missing_reports_not_found() {
        let (seen, _, _) = run_script(vec![StoreMsg::Get {
            name: "ghost".into(),
            token: 9,
        }]);
        assert!(matches!(seen.gets[0].1, Err(StoreError::NotFound(_))));
    }

    #[test]
    fn large_payload_takes_longer() {
        let small = run_script(vec![StoreMsg::Put {
            name: "s".into(),
            data: vec![0u8; 1_000],
            token: 1,
        }])
        .0
        .done_at
        .unwrap();
        let large = run_script(vec![StoreMsg::Put {
            name: "l".into(),
            data: vec![0u8; 4_000_000],
            token: 1,
        }])
        .0
        .done_at
        .unwrap();
        assert!(large > small, "large={large} small={small}");
        // 4 MB over a 1 Gb/s LAN alone is 32 ms of transfer.
        assert!(large >= SimTime::from_nanos(32_000_000));
    }

    #[test]
    fn delete_is_acknowledged() {
        let (_, sim, store) = run_script(vec![
            StoreMsg::Put {
                name: "obj".into(),
                data: b"x".to_vec(),
                token: 1,
            },
            StoreMsg::Delete {
                name: "obj".into(),
                token: 2,
            },
        ]);
        assert_eq!(sim.metrics().counter("storage.deletes"), 1);
        assert!(!store.contains("obj"));
    }

    #[test]
    fn invalid_put_acked_with_error() {
        let (seen, _, _) = run_script(vec![StoreMsg::Put {
            name: "bad/name".into(),
            data: b"x".to_vec(),
            token: 5,
        }]);
        assert_eq!(seen.acks, vec![("bad/name".to_owned(), 5, false)]);
    }
}
