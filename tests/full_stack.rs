//! Workspace-level integration tests: scenarios that span every crate —
//! the provenance layer on a Raft-ordered Fabric network, partition
//! tolerance, multi-client convergence, and energy accounting.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use hyperprov_repro::device::{DeviceProfile, EnergyModel, PowerMeter};
use hyperprov_repro::fabric::{
    BatchConfig, ChaincodeRegistry, ChannelPolicies, Committer, CostModel, EndorsementPolicy,
    Gateway, MspBuilder, MspId, PeerActor, RaftConfig, RaftOrdererActor, RAFT_TICK_TOKEN,
};
use hyperprov_repro::hyperprov::{
    audit, ClientCommand, HyperProv, HyperProvChaincode, HyperProvClient, NetworkConfig, NodeMsg,
    OpId, OpOutput,
};
use hyperprov_repro::sim::{ActorId, SimDuration, SimTime, Simulation};

/// HyperProv running over a 3-node Raft ordering service: the edge
/// resilience story (Vegvisir discussion) applied to the real chaincode.
#[test]
fn hyperprov_over_raft_ordering_survives_leader_loss() {
    let costs = CostModel::default();
    let mut msp_builder = MspBuilder::new(4);
    let org = MspId::new("org1");
    let peer_identity = msp_builder.enroll("peer0", &org);
    let client_identity = msp_builder.enroll("client0", &org);
    let msp = msp_builder.build();

    let mut registry = ChaincodeRegistry::new();
    registry.install(Arc::new(HyperProvChaincode::new()));

    // Layout: peer 0; orderers 1, 2, 3; storage 4; client 5.
    let peer_id = ActorId(0);
    let orderers: Vec<ActorId> = (1..=3).map(ActorId).collect();
    let storage_id = ActorId(4);
    let client_id = ActorId(5);

    let mut sim: Simulation<NodeMsg> = Simulation::new(17);
    // The gateway submits on "raft-channel", so the peer must host that
    // channel (proposals are routed to the matching per-channel ledger).
    let committer = Rc::new(RefCell::new(Committer::for_channel(
        "raft-channel".into(),
        msp.clone(),
        ChannelPolicies::new(EndorsementPolicy::any_of([org.clone()])),
    )));
    let mut peer =
        PeerActor::<NodeMsg>::new(peer_identity, registry, committer.clone(), costs, "peer0");
    peer.subscribe(client_id);
    assert_eq!(sim.add_actor(Box::new(peer)), peer_id);

    let batch = BatchConfig {
        max_message_count: 1,
        ..BatchConfig::default()
    };
    for i in 0..3 {
        let actor = RaftOrdererActor::<NodeMsg>::new(
            i,
            orderers.clone(),
            vec![peer_id],
            batch,
            RaftConfig::default(),
            SimDuration::from_millis(50),
            99,
            costs,
        )
        .with_channel("raft-channel".into());
        let id = sim.add_actor(Box::new(actor));
        assert_eq!(id, orderers[i]);
        sim.start_timer(id, SimDuration::ZERO, RAFT_TICK_TOKEN);
    }

    let store = Arc::new(hyperprov_repro::offchain::MemoryStore::new());
    let storage =
        hyperprov_repro::offchain::StorageActor::<NodeMsg>::new(store.clone(), Default::default());
    assert_eq!(sim.add_actor(Box::new(storage)), storage_id);

    let gateway = Gateway::new(
        client_identity,
        "raft-channel",
        vec![peer_id],
        orderers[0],
        1,
        costs,
    );
    let (client, completions) = HyperProvClient::new(gateway, storage_id, "sshfs://s/", costs);
    assert_eq!(sim.add_actor(Box::new(client)), client_id);

    // Let raft elect a leader.
    sim.run_until(SimTime::from_secs(10));

    // Store three items through the raft-ordered chain.
    let submit = |sim: &mut Simulation<NodeMsg>, op: u64, key: &str| {
        sim.inject_message(
            client_id,
            NodeMsg::Client(ClientCommand::StoreData {
                key: key.into(),
                data: format!("payload for {key}").into_bytes(),
                parents: vec![],
                metadata: vec![],
                op: OpId(op),
            }),
        );
    };
    submit(&mut sim, 1, "alpha");
    submit(&mut sim, 2, "beta");
    sim.run_until(SimTime::from_secs(40));
    assert_eq!(completions.borrow().len(), 2);
    assert!(completions.borrow().iter().all(|c| c.outcome.is_ok()));
    completions.borrow_mut().clear();

    // Kill the current leader by partitioning it from everyone.
    let leader = orderers
        .iter()
        .copied()
        .find(|_| true)
        .expect("have orderers");
    // We don't know which one leads; partition orderer 0 from the other
    // two (and from the client path via redirect) — if it led, a new
    // election must succeed; if not, nothing is lost.
    sim.network_mut().partition(orderers[0], orderers[1]);
    sim.network_mut().partition(orderers[0], orderers[2]);
    let _ = leader;
    sim.run_until(SimTime::from_secs(80));

    // The client still points at orderer 0. Heal so redirects flow, then
    // verify the system still commits (leadership may have moved).
    sim.network_mut().heal_all();
    sim.run_until(SimTime::from_secs(90));
    submit(&mut sim, 3, "gamma");
    sim.run_until(SimTime::from_secs(140));
    let done: Vec<_> = completions
        .borrow()
        .iter()
        .map(|c| c.outcome.is_ok())
        .collect();
    assert_eq!(done, vec![true], "gamma should commit after failover");

    // Ledger is consistent and audits clean.
    let ledger = committer.borrow();
    ledger.store().verify_chain().unwrap();
    let report = audit(&ledger, store.as_ref());
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.records_checked, 3);
}

/// Several clients spread across orgs write concurrently; all four peers
/// converge and the checksum index sees every client's items.
#[test]
fn multi_client_convergence_across_orgs() {
    let config = NetworkConfig::desktop(4).with_seed(23);
    let mut net = hyperprov_repro::hyperprov::HyperProvNetwork::build(&config);

    // Drive all four clients concurrently (open loop, one item each).
    for (i, &client) in net.clients.clone().iter().enumerate() {
        net.sim.inject_message(
            client,
            NodeMsg::Client(ClientCommand::StoreData {
                key: format!("client{i}-item"),
                data: format!("data from client {i}").into_bytes(),
                parents: vec![],
                metadata: vec![],
                op: OpId(1),
            }),
        );
    }
    net.sim.run_until(SimTime::from_secs(30));

    for (i, queue) in net.completions.iter().enumerate() {
        let queue = queue.borrow();
        assert_eq!(queue.len(), 1, "client {i}");
        let completion = &queue[0];
        match &completion.outcome {
            Ok(OpOutput::Committed {
                record: Some(r), ..
            }) => {
                // Each record is attributed to its submitting client.
                assert_eq!(r.creator.subject, format!("client{i}"));
            }
            other => panic!("client {i}: {other:?}"),
        }
    }

    // All peers converge to identical chains with 4 records.
    let tips: Vec<_> = net
        .ledgers
        .iter()
        .map(|l| l.borrow().store().tip_hash())
        .collect();
    assert!(tips.iter().all(|t| *t == tips[0]));
    for ledger in &net.ledgers {
        let report = audit(&ledger.borrow(), net.store.as_ref());
        assert!(report.is_clean());
        assert_eq!(report.records_checked, 4);
    }
}

/// The facade and the device/energy crates fit together: a short RPi
/// session consumes energy between HLF-idle and the 3.64 W cap.
#[test]
fn rpi_session_energy_in_calibrated_band() {
    let mut hp = HyperProv::rpi();
    let start = hp.now();
    for i in 0..4 {
        hp.store_data(
            &format!("edge-{i}"),
            vec![i as u8; 8 * 1024],
            vec![],
            vec![],
        )
        .unwrap();
    }
    let end = hp.now();
    let meter = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::from_secs(1));
    let peer = hp.network().sim.cpu(hp.network().peers[0]);
    let client = hp.network().sim.cpu(hp.network().clients[0]);
    let avg = meter.average_watts_combined(&[peer, client], start, end, true);
    assert!(
        (2.71..=3.64).contains(&avg),
        "avg power {avg} outside the ODROID-calibrated band"
    );
    // And the device profile agrees with the paper's ~order-of-magnitude
    // CPU gap.
    let gap =
        DeviceProfile::xeon_e5_1603().cpu_speed / DeviceProfile::raspberry_pi_3b_plus().cpu_speed;
    assert!(gap > 5.0);
}

/// Network partitions between peers delay but do not corrupt commits:
/// a peer cut off from the orderer misses blocks, then catches up after
/// healing because deliveries resume (no gossip gap recovery is modelled,
/// so we re-drive traffic after the heal).
#[test]
fn partitioned_peer_stays_consistent() {
    let config = NetworkConfig::desktop(1)
        .with_seed(31)
        .with_batch(BatchConfig {
            max_message_count: 1,
            ..BatchConfig::default()
        });
    let mut net = hyperprov_repro::hyperprov::HyperProvNetwork::build(&config);
    let victim = net.peers[3];
    let orderer = net.orderer;

    // Cut peer 3 off from the orderer.
    net.sim.network_mut().partition(victim, orderer);
    net.sim.inject_message(
        net.clients[0],
        NodeMsg::Client(ClientCommand::StoreData {
            key: "during-partition".into(),
            data: b"x".to_vec(),
            parents: vec![],
            metadata: vec![],
            op: OpId(1),
        }),
    );
    net.sim.run_until(SimTime::from_secs(20));
    assert_eq!(net.completions[0].borrow().len(), 1); // commits without peer 3

    let heights: Vec<u64> = net.ledgers.iter().map(|l| l.borrow().height()).collect();
    assert_eq!(heights[0], 1);
    assert_eq!(heights[3], 0, "partitioned peer missed the block");

    // Heal; the next delivery exposes the gap, peer 3 issues a
    // DeliverRequest (Fabric's deliver service) and catches up fully.
    net.sim.network_mut().heal_all();
    net.sim.inject_message(
        net.clients[0],
        NodeMsg::Client(ClientCommand::StoreData {
            key: "after-heal".into(),
            data: b"y".to_vec(),
            parents: vec![],
            metadata: vec![],
            op: OpId(2),
        }),
    );
    net.sim.run_until(SimTime::from_secs(40));
    assert!(net.sim.metrics().counter("peer3.catchup_requests") >= 1);
    assert!(net.sim.metrics().counter("orderer.deliver_requests") >= 1);
    // Peer 3 recovered both blocks and matches the healthy peers.
    let ledger3 = net.ledgers[3].borrow();
    let ledger0 = net.ledgers[0].borrow();
    assert_eq!(ledger0.height(), 2);
    assert_eq!(ledger3.height(), 2, "peer 3 should have caught up");
    assert_eq!(ledger3.store().tip_hash(), ledger0.store().tip_hash());
    ledger3.store().verify_chain().unwrap();
    ledger0.store().verify_chain().unwrap();
}
