//! Multi-channel (sharded) deployments: key→channel routing, per-channel
//! ledger isolation, scatter-gather queries, cross-channel lineage, and
//! per-channel ordering-service fault isolation.

use hyperprov_repro::fabric::COMPOSITE_SEP;
use hyperprov_repro::hyperprov::{
    ChannelRouter, ClientCommand, HashRouter, HyperProvNetwork, NetworkConfig, NodeMsg, OpId,
    OpOutput,
};
use hyperprov_repro::sim::SimTime;

/// Finds a key of the form `{prefix}-{i}` that the default router places
/// on `want` of `n` channels.
fn key_on_shard(prefix: &str, want: usize, n: usize) -> String {
    (0..10_000)
        .map(|i| format!("{prefix}-{i}"))
        .find(|k| HashRouter.route(k, n) == want)
        .expect("hash router reaches every shard")
}

fn store(net: &mut HyperProvNetwork, client: usize, op: u64, key: &str, parents: Vec<String>) {
    let target = net.clients[client];
    net.sim.inject_message(
        target,
        NodeMsg::Client(ClientCommand::StoreData {
            key: key.to_owned(),
            data: format!("payload of {key}").into_bytes(),
            parents,
            metadata: vec![],
            op: OpId(op),
        }),
    );
}

fn drain_ok(net: &mut HyperProvNetwork, client: usize) -> Vec<OpOutput> {
    let queue = net.completions[client].clone();
    let mut out = Vec::new();
    for completion in queue.borrow_mut().drain(..) {
        out.push(completion.outcome.expect("operation should succeed"));
    }
    out
}

/// Writes land only on the channel the router picks: the two channels'
/// state databases stay disjoint, every hosting peer of the owning
/// channel holds the record, and no peer of the other channel sees it.
#[test]
fn two_channel_state_isolation() {
    let config = NetworkConfig::desktop(2).with_seed(41).with_channels(2);
    let mut net = HyperProvNetwork::build(&config);
    assert_eq!(net.channels.len(), 2);
    assert_eq!(net.channel_ledgers[0].len(), 4, "all peers host channel 0");

    let keys: Vec<String> = (0..2)
        .flat_map(|shard| (0..3).map(move |i| key_on_shard(&format!("iso-{shard}-{i}"), shard, 2)))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        store(&mut net, i % 2, i as u64 + 1, key, vec![]);
    }
    net.sim.run_until(SimTime::from_secs(60));
    assert_eq!(drain_ok(&mut net, 0).len(), 3);
    assert_eq!(drain_ok(&mut net, 1).len(), 3);

    for key in &keys {
        let shard = HashRouter.route(key, 2);
        let item_key = format!("item{COMPOSITE_SEP}{key}{COMPOSITE_SEP}");
        for (ci, ledgers) in net.channel_ledgers.iter().enumerate() {
            for (peer, committer) in ledgers {
                let committer = committer.borrow();
                let present = committer
                    .state()
                    .scan_prefix("hyperprov", &item_key)
                    .next()
                    .is_some();
                assert_eq!(
                    present,
                    ci == shard,
                    "key {key} (shard {shard}) on peer {peer} channel {ci}"
                );
            }
        }
    }

    // Each channel's replicas converge among themselves, and MVCC state
    // never leaks across: the two channels' world states differ.
    for ledgers in &net.channel_ledgers {
        let hashes: Vec<_> = ledgers
            .iter()
            .map(|(_, c)| c.borrow().state().state_hash())
            .collect();
        assert!(hashes.iter().all(|h| *h == hashes[0]));
    }
    assert_ne!(
        net.channel_ledgers[0][0].1.borrow().state().state_hash(),
        net.channel_ledgers[1][0].1.borrow().state().state_hash(),
    );
}

/// Lineage traversal follows parent links across shards: a child on one
/// channel whose parent lives on another still yields the full chain, and
/// checksum/list queries scatter-gather over every channel.
#[test]
fn cross_channel_lineage_and_scatter_queries() {
    let mut config = NetworkConfig::desktop(1).with_seed(43).with_channels(2);
    // Parent checks are per-channel state lookups, so cross-channel
    // parent links need the permissive chaincode (the strict variant
    // would reject a parent it cannot see on its own shard).
    config.permissive = true;
    let mut net = HyperProvNetwork::build(&config);

    let grandparent = key_on_shard("lineage-gp", 0, 2);
    let parent = key_on_shard("lineage-p", 1, 2);
    let child = key_on_shard("lineage-c", 0, 2);

    store(&mut net, 0, 1, &grandparent, vec![]);
    net.sim.run_until(SimTime::from_secs(20));
    store(&mut net, 0, 2, &parent, vec![grandparent.clone()]);
    net.sim.run_until(SimTime::from_secs(40));
    store(&mut net, 0, 3, &child, vec![parent.clone()]);
    net.sim.run_until(SimTime::from_secs(60));
    assert_eq!(drain_ok(&mut net, 0).len(), 3);

    net.sim.inject_message(
        net.clients[0],
        NodeMsg::Client(ClientCommand::GetLineage {
            key: child.clone(),
            depth: 8,
            op: OpId(4),
        }),
    );
    net.sim.run_until(SimTime::from_secs(80));
    let outputs = drain_ok(&mut net, 0);
    assert_eq!(outputs.len(), 1);
    match &outputs[0] {
        OpOutput::Lineage { entries, .. } => {
            let chain: Vec<(u32, &str)> = entries
                .iter()
                .map(|e| (e.depth, e.record.key.as_str()))
                .collect();
            assert_eq!(
                chain,
                vec![
                    (0, child.as_str()),
                    (1, parent.as_str()),
                    (2, grandparent.as_str()),
                ],
                "lineage must hop shard 0 → 1 → 0"
            );
        }
        other => panic!("expected lineage, got {other:?}"),
    }

    // `list` scatter-gathers: every key, across both shards, sorted.
    net.sim.inject_message(
        net.clients[0],
        NodeMsg::Client(ClientCommand::List { op: OpId(5) }),
    );
    net.sim.run_until(SimTime::from_secs(100));
    let outputs = drain_ok(&mut net, 0);
    match &outputs[0] {
        OpOutput::Keys(keys) => {
            let mut expected = vec![grandparent.clone(), parent.clone(), child.clone()];
            expected.sort();
            assert_eq!(keys, &expected);
        }
        other => panic!("expected keys, got {other:?}"),
    }
}

/// A diamond DAG whose arms land on different shards: the hop-by-hop
/// lineage walk visits the shared grandparent exactly once, reports the
/// depth clamp explicitly, and the one-shot graph-index queries return
/// the same node sets with one batched frontier exchange per shard per
/// level.
#[test]
fn cross_shard_diamond_lineage_and_graph_queries() {
    let mut config = NetworkConfig::desktop(1).with_seed(53).with_channels(2);
    config.permissive = true;
    let mut net = HyperProvNetwork::build(&config);

    let gp = key_on_shard("dia-gp", 0, 2);
    let p1 = key_on_shard("dia-p1", 1, 2);
    let p2 = key_on_shard("dia-p2", 0, 2);
    let child = key_on_shard("dia-c", 1, 2);

    store(&mut net, 0, 1, &gp, vec![]);
    net.sim.run_until(SimTime::from_secs(20));
    store(&mut net, 0, 2, &p1, vec![gp.clone()]);
    store(&mut net, 0, 3, &p2, vec![gp.clone()]);
    net.sim.run_until(SimTime::from_secs(40));
    store(&mut net, 0, 4, &child, vec![p1.clone(), p2.clone()]);
    net.sim.run_until(SimTime::from_secs(60));
    assert_eq!(drain_ok(&mut net, 0).len(), 4);

    let run_query = |net: &mut HyperProvNetwork, cmd: ClientCommand| {
        net.sim.inject_message(net.clients[0], NodeMsg::Client(cmd));
        let stop = net.sim.now() + hyperprov_repro::sim::SimDuration::from_secs(20);
        net.sim.run_until(stop);
        let mut outputs = drain_ok(net, 0);
        assert_eq!(outputs.len(), 1);
        outputs.pop().unwrap()
    };

    // The oracle walk: the diamond's shared grandparent appears once.
    match run_query(
        &mut net,
        ClientCommand::GetLineage {
            key: child.clone(),
            depth: 8,
            op: OpId(5),
        },
    ) {
        OpOutput::Lineage { entries, truncated } => {
            let mut chain: Vec<(u32, &str)> = entries
                .iter()
                .map(|e| (e.depth, e.record.key.as_str()))
                .collect();
            chain.sort_unstable();
            let mut expect = vec![
                (0, child.as_str()),
                (1, p1.as_str()),
                (1, p2.as_str()),
                (2, gp.as_str()),
            ];
            expect.sort_unstable();
            assert_eq!(chain, expect, "grandparent must be visited exactly once");
            assert!(!truncated);
        }
        other => panic!("expected lineage, got {other:?}"),
    }

    // The clamp is reported, not silently swallowed.
    match run_query(
        &mut net,
        ClientCommand::GetLineage {
            key: child.clone(),
            depth: 1,
            op: OpId(6),
        },
    ) {
        OpOutput::Lineage { entries, truncated } => {
            assert_eq!(entries.len(), 3);
            assert!(truncated, "the cut-off grandparent must be flagged");
        }
        other => panic!("expected lineage, got {other:?}"),
    }

    // The graph index returns the same sets in one batched exchange.
    let keys_of = |output: OpOutput| -> Vec<String> {
        match output {
            OpOutput::Graph(slice) => {
                let mut keys: Vec<String> = slice.entries.into_iter().map(|(_, k)| k).collect();
                keys.sort();
                keys
            }
            other => panic!("expected graph slice, got {other:?}"),
        }
    };
    let mut all = vec![gp.clone(), p1.clone(), p2.clone(), child.clone()];
    all.sort();
    let ancestry = keys_of(run_query(
        &mut net,
        ClientCommand::GetAncestry {
            key: child.clone(),
            depth: 8,
            op: OpId(7),
        },
    ));
    assert_eq!(ancestry, all);
    let impact = keys_of(run_query(
        &mut net,
        ClientCommand::GetDescendants {
            key: gp.clone(),
            depth: 8,
            op: OpId(8),
        },
    ));
    assert_eq!(impact, all);
    match run_query(
        &mut net,
        ClientCommand::GetSubgraph {
            key: p1.clone(),
            depth: 8,
            op: OpId(9),
        },
    ) {
        OpOutput::Graph(slice) => {
            assert_eq!(slice.entries.len(), 4);
            let mut edges = slice.edges;
            edges.sort();
            let mut expect = vec![
                (p1.clone(), gp.clone()),
                (p2.clone(), gp.clone()),
                (child.clone(), p1.clone()),
                (child.clone(), p2.clone()),
            ];
            expect.sort();
            assert_eq!(edges, expect);
        }
        other => panic!("expected graph slice, got {other:?}"),
    }
}

/// Identical payloads on different shards are both found by the reverse
/// checksum index (a scatter-gather over every channel's chaincode).
#[test]
fn checksum_lookup_spans_channels() {
    let config = NetworkConfig::desktop(1).with_seed(47).with_channels(2);
    let mut net = HyperProvNetwork::build(&config);

    let a = key_on_shard("twin-a", 0, 2);
    let b = key_on_shard("twin-b", 1, 2);
    let payload = b"identical bytes".to_vec();
    for (op, key) in [(1, &a), (2, &b)] {
        net.sim.inject_message(
            net.clients[0],
            NodeMsg::Client(ClientCommand::StoreData {
                key: key.to_string(),
                data: payload.clone(),
                parents: vec![],
                metadata: vec![],
                op: OpId(op),
            }),
        );
    }
    net.sim.run_until(SimTime::from_secs(40));
    let outputs = drain_ok(&mut net, 0);
    assert_eq!(outputs.len(), 2);
    let checksum = match &outputs[0] {
        OpOutput::Committed {
            record: Some(r), ..
        } => r.checksum,
        other => panic!("expected commit, got {other:?}"),
    };

    net.sim.inject_message(
        net.clients[0],
        NodeMsg::Client(ClientCommand::GetKeysByChecksum {
            checksum,
            op: OpId(3),
        }),
    );
    net.sim.run_until(SimTime::from_secs(60));
    match &drain_ok(&mut net, 0)[0] {
        OpOutput::Keys(keys) => {
            let mut expected = vec![a.clone(), b.clone()];
            expected.sort();
            assert_eq!(keys, &expected, "both shards must answer");
        }
        other => panic!("expected keys, got {other:?}"),
    }
}

/// Killing one channel's entire Raft quorum stops that shard only: the
/// other channel keeps committing, and the dead shard resumes (after a
/// fresh election) once the partition heals.
#[test]
fn raft_outage_on_one_channel_leaves_other_channels_unaffected() {
    let config = NetworkConfig::desktop(1)
        .with_seed(53)
        .with_raft_orderers(3)
        .with_channels(2);
    let mut net = HyperProvNetwork::build(&config);
    assert_eq!(net.channel_orderers[0].len(), 3);
    assert_eq!(net.channel_orderers[1].len(), 3);
    assert_eq!(net.orderers.len(), 6);

    // Let both clusters elect.
    net.sim.run_until(SimTime::from_secs(10));

    // Partition channel 0's cluster pairwise: whichever member led, it is
    // now dead to the shard (no quorum anywhere).
    let ch0 = net.channel_orderers[0].clone();
    for i in 0..ch0.len() {
        for j in (i + 1)..ch0.len() {
            net.sim.network_mut().partition(ch0[i], ch0[j]);
        }
    }

    // A key on the healthy shard commits during the outage...
    let healthy = key_on_shard("healthy", 1, 2);
    store(&mut net, 0, 1, &healthy, vec![]);
    net.sim.run_until(SimTime::from_secs(40));
    let outputs = drain_ok(&mut net, 0);
    assert_eq!(outputs.len(), 1, "channel 1 must commit during the outage");
    // ...and lands only on channel 1's ledgers.
    assert_eq!(net.channel_ledgers[1][0].1.borrow().height(), 1);
    assert_eq!(
        net.channel_ledgers[0][0].1.borrow().height(),
        0,
        "channel 0 cannot order without quorum"
    );

    // Heal; channel 0 re-elects and commits again.
    net.sim.network_mut().heal_all();
    net.sim.run_until(SimTime::from_secs(60));
    let sick = key_on_shard("recovered", 0, 2);
    store(&mut net, 0, 2, &sick, vec![]);
    net.sim.run_until(SimTime::from_secs(120));
    let outputs = drain_ok(&mut net, 0);
    assert_eq!(outputs.len(), 1, "channel 0 must recover after the heal");
    assert_eq!(net.channel_ledgers[0][0].1.borrow().height(), 1);
}

/// Routing is a pure function of the key: a rebuilt network (fresh MSP,
/// fresh actors) places every key on the same shard as the first build.
#[test]
fn routing_is_stable_across_deployments() {
    let keys: Vec<String> = (0..8).map(|i| format!("stable-{i}")).collect();
    let shards: Vec<usize> = keys.iter().map(|k| HashRouter.route(k, 2)).collect();

    for seed in [61, 67] {
        let config = NetworkConfig::desktop(1).with_seed(seed).with_channels(2);
        let mut net = HyperProvNetwork::build(&config);
        for (i, key) in keys.iter().enumerate() {
            store(&mut net, 0, i as u64 + 1, key, vec![]);
            net.sim
                .run_until(net.sim.now() + hyperprov_repro::sim::SimDuration::from_secs(15));
        }
        assert_eq!(drain_ok(&mut net, 0).len(), keys.len());
        for (key, &shard) in keys.iter().zip(&shards) {
            let item_key = format!("item{COMPOSITE_SEP}{key}{COMPOSITE_SEP}");
            let present = net.channel_ledgers[shard][0]
                .1
                .borrow()
                .state()
                .scan_prefix("hyperprov", &item_key)
                .next()
                .is_some();
            assert!(present, "seed {seed}: key {key} must sit on shard {shard}");
        }
    }
}
