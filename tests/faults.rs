//! Workspace-level fault-tolerance tests: commit deadlines firing cleanly
//! under partitions, split peer groups converging after heal, Raft
//! leader loss with a retrying client, and transient partitions absorbed
//! entirely by the client retry budget.

use hyperprov_repro::fabric::{BatchConfig, RaftOrdererActor};
use hyperprov_repro::hyperprov::{
    ClientCommand, HyperProvClient, HyperProvError, HyperProvNetwork, NetworkConfig, NodeMsg, OpId,
    RetryPolicy,
};
use hyperprov_repro::sim::{ActorId, FaultPlan, SimDuration, SimTime};

fn store(net: &mut HyperProvNetwork, client: usize, op: u64, key: &str) {
    net.sim.inject_message(
        net.clients[client],
        NodeMsg::Client(ClientCommand::StoreData {
            key: key.into(),
            data: format!("payload for {key}").into_bytes(),
            parents: vec![],
            metadata: vec![],
            op: OpId(op),
        }),
    );
}

/// Looks up the client actor through the engine and reports how many
/// operations it still tracks (tx waits, storage waits, parked retries).
fn inflight(net: &HyperProvNetwork, id: ActorId) -> usize {
    net.sim
        .actor_ref(id)
        .and_then(|a| a.as_any())
        .and_then(|any| any.downcast_ref::<HyperProvClient>())
        .expect("client actor")
        .inflight()
}

fn raft_leader(net: &HyperProvNetwork) -> Option<ActorId> {
    net.orderers.iter().copied().find(|&id| {
        net.sim
            .actor_ref(id)
            .and_then(|a| a.as_any())
            .and_then(|any| any.downcast_ref::<RaftOrdererActor<NodeMsg>>())
            .is_some_and(|o| o.is_leader())
    })
}

/// A commit notification that never arrives (home peer partitioned from
/// the orderer) must surface as a clean `Timeout` completion: no retry
/// policy is armed, the deadline fires, and the client tracks nothing
/// afterwards.
#[test]
fn commit_wait_times_out_cleanly_under_partition() {
    let config = NetworkConfig::desktop(1)
        .with_seed(41)
        .with_batch(BatchConfig {
            max_message_count: 1,
            ..BatchConfig::default()
        })
        .with_deadlines(
            Some(SimDuration::from_secs(2)),
            Some(SimDuration::from_secs(4)),
        );
    let mut net = HyperProvNetwork::build(&config);

    // Endorsement (client <-> peer 0) and submission (client <-> orderer)
    // still work; only the block delivery to the client's home peer is
    // cut, so the commit event never fires.
    let home = net.peers[0];
    let orderer = net.orderer;
    net.sim.network_mut().partition(home, orderer);

    store(&mut net, 0, 1, "stuck-commit");
    net.sim.run_until(SimTime::from_secs(30));

    let completions = net.completions[0].borrow();
    assert_eq!(completions.len(), 1, "the operation must complete");
    assert!(
        matches!(completions[0].outcome, Err(HyperProvError::Timeout)),
        "expected a commit deadline timeout, got {:?}",
        completions[0].outcome
    );
    assert_eq!(net.sim.metrics().counter("client.timeouts"), 1);
    assert_eq!(
        inflight(&net, net.clients[0]),
        0,
        "no dangling op state after the deadline fired"
    );
}

/// A 2/2 peer split heals via block catch-up: the cut half misses blocks
/// during the window, then replays them on the next delivery and ends up
/// with state databases identical to the connected half.
#[test]
fn partitioned_peer_group_heals_without_state_divergence() {
    let config = NetworkConfig::desktop(2)
        .with_seed(47)
        .with_batch(BatchConfig {
            max_message_count: 1,
            ..BatchConfig::default()
        });
    let mut net = HyperProvNetwork::build(&config);

    // Cut peers 2 and 3 off from the orderer for the first 10 seconds.
    let cut = [net.peers[2], net.peers[3]];
    let t0 = net.sim.now();
    FaultPlan::new()
        .partition_window(
            &cut,
            &[net.orderer],
            t0 + SimDuration::from_secs(1),
            t0 + SimDuration::from_secs(10),
        )
        .install(&mut net.sim);

    // Traffic during the partition commits on the connected half only
    // (clients 0 and 1 are homed at peers 0 and 1).
    net.sim.run_until(SimTime::from_secs(2));
    store(&mut net, 0, 1, "during-a");
    store(&mut net, 1, 1, "during-b");
    net.sim.run_until(SimTime::from_secs(8));
    assert_eq!(net.completions[0].borrow().len(), 1);
    assert_eq!(net.completions[1].borrow().len(), 1);
    let cut_heights: Vec<u64> = [2, 3]
        .iter()
        .map(|&i| net.ledgers[i].borrow().height())
        .collect();
    assert!(
        cut_heights.iter().all(|&h| h < 2),
        "cut peers should have missed blocks, got {cut_heights:?}"
    );

    // After the heal, fresh traffic exposes the gap; the cut peers issue
    // deliver requests and replay everything they missed.
    net.sim.run_until(SimTime::from_secs(12));
    store(&mut net, 0, 2, "after-a");
    store(&mut net, 1, 2, "after-b");
    net.sim.run_until(SimTime::from_secs(30));

    let heights: Vec<u64> = net.ledgers.iter().map(|l| l.borrow().height()).collect();
    assert_eq!(heights, vec![4, 4, 4, 4], "all peers at the same height");
    let hashes: Vec<_> = net
        .ledgers
        .iter()
        .map(|l| l.borrow().state().state_hash())
        .collect();
    assert!(
        hashes.iter().all(|h| *h == hashes[0]),
        "state databases diverged after catch-up"
    );
    let tips: Vec<_> = net
        .ledgers
        .iter()
        .map(|l| l.borrow().store().tip_hash())
        .collect();
    assert!(tips.iter().all(|t| *t == tips[0]));
    for ledger in &net.ledgers {
        ledger.borrow().store().verify_chain().unwrap();
    }
}

/// Killing the Raft leader mid-run does not strand the client: the
/// remaining members elect a new leader, the crashed node recovers and
/// rejoins, and the deadline-plus-retry client pushes the operation
/// through without exhausting its budget.
#[test]
fn raft_leader_kill_recovers_with_retrying_client() {
    let config = NetworkConfig::desktop(1)
        .with_seed(53)
        .with_raft_orderers(3)
        .with_batch(BatchConfig {
            max_message_count: 1,
            ..BatchConfig::default()
        })
        .with_deadlines(
            Some(SimDuration::from_secs(2)),
            Some(SimDuration::from_secs(4)),
        )
        .with_retry(RetryPolicy::new(8));
    let mut net = HyperProvNetwork::build(&config);

    // Let the cluster elect, then kill whoever leads.
    net.sim.run_until(SimTime::from_secs(2));
    let leader = raft_leader(&net).expect("a leader after two seconds");
    net.sim.crash_actor(leader);

    store(&mut net, 0, 1, "across-failover");
    net.sim.run_until(SimTime::from_secs(6));
    net.sim.restart_actor(leader);
    net.sim.run_until(SimTime::from_secs(60));

    let completions = net.completions[0].borrow();
    assert_eq!(completions.len(), 1);
    assert!(
        completions[0].outcome.is_ok(),
        "operation must commit across the failover, got {:?}",
        completions[0].outcome
    );
    assert_eq!(net.sim.metrics().counter("client.exhausted"), 0);
    assert_eq!(inflight(&net, net.clients[0]), 0, "no hung operations");
    assert!(
        raft_leader(&net).is_some(),
        "the cluster must have a leader again"
    );
    net.ledgers[0].borrow().store().verify_chain().unwrap();
}

/// A transient partition shorter than the retry budget is invisible to
/// the caller: early attempts hit the commit deadline, the client backs
/// off and resubmits, and an attempt after the heal succeeds.
#[test]
fn transient_partition_absorbed_by_retry_budget() {
    let config = NetworkConfig::desktop(1)
        .with_seed(59)
        .with_batch(BatchConfig {
            max_message_count: 1,
            ..BatchConfig::default()
        })
        .with_deadlines(
            Some(SimDuration::from_secs(1)),
            Some(SimDuration::from_secs(1)),
        )
        .with_retry(RetryPolicy::new(6));
    let mut net = HyperProvNetwork::build(&config);

    // Cut the client's submission path to the orderer. Endorsement still
    // succeeds, but the envelope is never ordered, so nothing commits
    // anywhere — each attempt until the heal dies to the commit deadline.
    // (Cutting a peer instead would let the first attempt commit on the
    // other peers and turn the resubmission into an MVCC conflict.)
    let t0 = net.sim.now();
    FaultPlan::new()
        .partition_window(
            &[net.clients[0]],
            &[net.orderer],
            t0,
            t0 + SimDuration::from_secs(3),
        )
        .install(&mut net.sim);

    store(&mut net, 0, 1, "transient");
    net.sim.run_until(SimTime::from_secs(30));

    let completions = net.completions[0].borrow();
    assert_eq!(completions.len(), 1);
    assert!(
        completions[0].outcome.is_ok(),
        "retries should outlast the partition, got {:?}",
        completions[0].outcome
    );
    assert!(
        net.sim.metrics().counter("client.retries") >= 1,
        "at least one attempt must have been retried"
    );
    assert!(net.sim.metrics().counter("client.timeouts") >= 1);
    assert_eq!(net.sim.metrics().counter("client.exhausted"), 0);
    assert_eq!(inflight(&net, net.clients[0]), 0);
}
