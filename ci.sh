#!/usr/bin/env sh
# Local CI gate: formatting, lints, release build, tests.
# Run from the repo root; fails fast on the first broken step.
set -eu

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
