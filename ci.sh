#!/usr/bin/env sh
# Local CI gate: formatting, lints, release build, tests, then smoke-runs
# the examples and the overload sweep.
# Run from the repo root; fails fast on the first broken step.
set -eu

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# The examples double as end-to-end smoke tests of the public API.
for example in quickstart iot_edge scientific_workflow tamper_detection; do
    cargo run --release --example "$example"
done

# Exercises the bounded-admission-queue path end to end.
cargo run --release -p hyperprov-bench --bin table_overload -- --quick

# Exercises crash/restart recovery, Raft failover, partitions and the
# retrying client end to end.
cargo run --release -p hyperprov-bench --bin table_faults -- --quick

# Exercises multi-channel deployments, key->channel routing and
# scatter-gather queries end to end.
cargo run --release -p hyperprov-bench --bin table_sharding -- --quick

# Exercises the accelerated commit path (multi-lane VSCC, validate/apply
# pipelining, verification caches) end to end.
cargo run --release -p hyperprov-bench --bin table_commit_pipeline -- --quick

# Exercises the materialized provenance DAG index and the batched
# cross-shard graph queries end to end (index vs oracle walk).
cargo run --release -p hyperprov-bench --bin table_lineage -- --quick

# Exercises snapshot cutting, block-store pruning, deep-chain crash
# recovery and elastic membership (spare peer join + snapshot catch-up)
# end to end.
cargo run --release -p hyperprov-bench --bin table_recovery -- --quick

# Exercises the 10k-client scale machinery in miniature: targeted commit
# events, the flat-sorted state backend and lazily generated open-loop
# schedules (the full run is `table_scale` without --quick).
cargo run --release -p hyperprov-bench --bin table_scale -- --quick

# Perf-regression gate: reruns the quick BENCH-SIM reference workload and
# diffs it against the committed BENCH_sim.json baseline (tight tolerances
# for deterministic model metrics, loose ratio bounds for host wall-clock
# numbers). Exits non-zero on any out-of-tolerance metric; regenerate the
# baseline deliberately with `bench_regress --update`.
cargo run --release -p hyperprov-bench --bin bench_regress -- --quick
