//! Umbrella crate for the HyperProv reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See [`hyperprov`] for the provenance API itself.

pub use hyperprov;
pub use hyperprov_baseline as baseline;
pub use hyperprov_device as device;
pub use hyperprov_fabric as fabric;
pub use hyperprov_ledger as ledger;
pub use hyperprov_offchain as offchain;
pub use hyperprov_sim as sim;
