//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Implements enough of criterion's surface for the workspace's
//! micro-benchmarks: `Criterion` with the builder knobs the benches use,
//! benchmark groups with throughput annotation, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! wall-clock loop (warm-up, then timed batches) with min/mean/max
//! reporting — no statistical analysis, plots or HTML output. When the
//! binary is invoked with `--test` (as `cargo test` does for bench
//! targets), every benchmark body runs exactly once so test runs stay
//! fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line arguments (`--test`, optional name filter),
    /// mirroring criterion's harness-mode CLI handling.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                // Flags that take a value we do not interpret.
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" => {
                    let _ = args.next();
                }
                other if other.starts_with('-') => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn run<F>(&mut self, name: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name, throughput, self.test_mode);
    }
}

/// Group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run(&name, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.run(&name, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a benchmark function name and a parameter.
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<f64>, // nanoseconds per iteration
}

impl Bencher {
    /// Measures `routine`, retaining per-iteration timings.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.samples.push(0.0);
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size batches so all samples together fill the measurement time.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(nanos);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>, test_mode: bool) {
        if test_mode {
            println!("{name:<40} ok (test mode, 1 iteration)");
            return;
        }
        if self.samples.is_empty() {
            println!("{name:<40} no samples");
            return;
        }
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().copied().fold(0.0f64, f64::max);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let mut line = format!(
            "{name:<40} time: [{} {} {}]",
            fmt_nanos(min),
            fmt_nanos(mean),
            fmt_nanos(max)
        );
        if let Some(t) = throughput {
            let (amount, unit) = match t {
                Throughput::Bytes(b) => (b as f64, "B"),
                Throughput::Elements(e) => (e as f64, "elem"),
            };
            let rate = amount / (mean / 1e9);
            line.push_str(&format!("  thrpt: {}", fmt_rate(rate, unit)));
        }
        println!("{line}");
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::configure_from_args($config);
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(fmt_nanos(500.0), "500.0 ns");
        assert_eq!(fmt_nanos(1_500.0), "1.50 µs");
        assert_eq!(fmt_nanos(2_500_000.0), "2.50 ms");
    }
}
