//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, `any::<T>()` for a few
//! primitive types, integer/float range strategies, regex-lite string
//! patterns (`"[a-z]{1,8}"`, `".{0,24}"`), tuple strategies,
//! [`collection::vec`], [`option::of`], and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for this workspace:
//! - No shrinking: a failing case reports its inputs' debug summary and
//!   the case seed, not a minimised counterexample.
//! - Fully deterministic: the case RNG is seeded from the property's
//!   name, so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

/// Number of successful cases each property must pass.
const CASES: u32 = 256;
/// Upper bound on `prop_assume!` rejections before the run aborts.
const MAX_REJECTS: u32 = 65_536;

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property does not hold; carries the failure message.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another input.
    Reject(String),
}

/// Deterministic generator driving input synthesis (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a property name so each property has a
    /// stable, independent input stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi]` (inclusive).
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let width = hi - lo;
        if width == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (width + 1)
    }

    /// Returns `true` with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_unit_f64() < p
    }
}

/// A generator of test-case inputs, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value from `rng`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for [u8; 32] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; 32];
        for chunk in out.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        out
    }
}

/// Strategy over a type's whole domain, mirroring `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<fn() -> A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.next_in(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.next_in(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
uint_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // next_unit_f64 is [0, 1); fold a coin flip in so the upper bound
        // is actually reachable.
        if rng.next_bool(1.0 / 4096.0) {
            hi
        } else {
            lo + rng.next_unit_f64() * (hi - lo)
        }
    }
}

/// String strategy from a regex-like pattern. Supported syntax is the
/// subset the workspace tests use: a sequence of atoms, each either a
/// character class `[a-z0-9 _./-]` or `.` (printable ASCII), followed by
/// an optional `{m,n}` repetition (default exactly one).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut out = String::new();
    while i < chars.len() {
        // Parse one atom into a candidate character set.
        let set: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                (0x20u8..0x7f).map(char::from).collect()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern {pattern:?}"
                );
                i += 1; // consume ']'
                set
            }
            other => {
                panic!("unsupported pattern atom {other:?} in {pattern:?}")
            }
        };
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        // Parse the optional {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (m, n) = body
                .split_once(',')
                .unwrap_or_else(|| panic!("repetition must be {{m,n}} in {pattern:?}"));
            i = close + 1;
            (
                m.trim().parse::<usize>().expect("bad repetition bound"),
                n.trim().parse::<usize>().expect("bad repetition bound"),
            )
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        let count = rng.next_in(min as u64, max as u64) as usize;
        for _ in 0..count {
            out.push(set[rng.next_in(0, set.len() as u64 - 1) as usize]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Returns the inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec length range");
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.next_in(self.min as u64, self.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some(inner)` three times in four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Drives one property: repeatedly generates inputs and runs `case`
/// until [`CASES`] cases pass, panicking on the first failure.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejects = 0u32;
    while passed < CASES {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= MAX_REJECTS,
                    "property {name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Declares property-based tests; each argument is drawn from its
/// strategy for every generated case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __pt_rng);)+
                    let __pt_case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __pt_case()
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        if !(*__pt_l == *__pt_r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_l,
                __pt_r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn patterns_respect_class_and_length() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = crate::generate_pattern("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = crate::generate_pattern("[a-zA-Z0-9 _./-]{1,16}", &mut rng);
            assert!((1..=16).contains(&t.len()));
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _./-".contains(c)));
            let dot = crate::generate_pattern(".{0,24}", &mut rng);
            assert!(dot.len() <= 24);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(any::<u64>(), 1..10);
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #[test]
        fn macro_round_trip(
            v in crate::collection::vec(0u64..1000, 0..20),
            flag in any::<bool>(),
            label in "[a-z]{1,4}",
            opt in crate::option::of(0u32..10),
        ) {
            prop_assert!(v.iter().all(|&x| x < 1000));
            prop_assert_eq!(flag, flag);
            prop_assert!(!label.is_empty() && label.len() <= 4);
            if let Some(x) = opt {
                prop_assert!(x < 10, "opt out of range: {x}");
            }
        }

        #[test]
        fn assume_skips_but_completes(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }
}
