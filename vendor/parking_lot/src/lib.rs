//! Offline stand-in for the `parking_lot` crate (0.12 API subset).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! interface: `lock()`/`read()`/`write()` return guards directly instead
//! of `Result`s. A poisoned std lock means a writer panicked mid-update;
//! parking_lot's semantics are to carry on, so the shim does the same by
//! unwrapping into the inner guard either way.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    /// Returns a mutable reference to the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A mutex with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
