//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the narrow slice of `rand` it actually uses:
//! the [`RngCore`]/[`SeedableRng`] plumbing that `hyperprov_sim::DetRng`
//! plugs into, and the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`, `fill_bytes`). Distribution sampling is intentionally
//! simple — all simulation randomness must be deterministic per seed, and
//! statistical finesse beyond uniformity is not required by any caller.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type reported by fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure (never fails
    /// here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed;
    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(42);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&a));
            let b: u32 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&b));
            let c: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&c));
            let d: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Step(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
